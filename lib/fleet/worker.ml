(* One shard's campaign: the existing [Fuzzer.fuzz] loop under the
   fleet's per-shard checkpoint, result and monitor-socket files.

   The same [run_shard] body serves three callers: the forked worker
   process ([child_main]), a re-adoption after a crash (identical call,
   higher [attempt] — the checkpoint on disk makes it continue
   bit-for-bit), and the in-process sequential reference runner the
   tests and CI diff fleet output against. Determinism of the whole
   fleet reduces to determinism of this function, which PR 5's
   checkpoint/resume guarantee already gives.

   Chaos points: [fleet.worker_crash] (abrupt [_exit], as if SIGKILLed)
   and [fleet.worker_hang] (stops polling forever, so the lease expires)
   are checked at every test-case boundary under a context salted with
   (shard seed, attempt, test case). The attempt number *must* be in the
   salt: a schedule salted only by the test case would re-fire the same
   crash at the same test case after every re-adoption, turning any
   armed crash rate into a deterministic quarantine. *)

open Revizor
module Json = Revizor_obs.Json
module Faultpoint = Revizor_obs.Faultpoint
module Monitor = Revizor_obs.Monitor

let schema = "revizor.shard-result.v1"

let fp_crash = Faultpoint.point "fleet.worker_crash"
let fp_hang = Faultpoint.point "fleet.worker_hang"

type violation_entry = {
  v_tc : int;  (* stats.test_cases at detection *)
  v_label : string;
  v_summary : string;
  v_program : string;  (* violation.asm text *)
  v_inputs : string list;  (* Results.input_to_line lines *)
}

type result = {
  r_shard : int;
  r_seed : int64;
  r_attempt : int;  (* adoption attempt that completed the shard *)
  r_violation : violation_entry option;
  r_stats : Fuzzer.stats;  (* elapsed_s zeroed: wall time is not content *)
  r_atlas : Ucoverage.t;
}

let config_of_spec (spec : Ledger.spec) ~seed =
  match (Target.find spec.Ledger.sp_target, Contract.of_name spec.Ledger.sp_contract) with
  | None, _ ->
      Error (Printf.sprintf "fleet: unknown target %S" spec.Ledger.sp_target)
  | _, Error e -> Error (Printf.sprintf "fleet: %s" e)
  | Some target, Ok contract ->
      Ok
        (Target.fuzzer_config ~seed ~n_inputs:spec.Ledger.sp_n_inputs contract
           target)

(* Chaos-schedule salt: shard identity x adoption attempt x test case. *)
let chaos_salt ~seed ~attempt ~tc =
  Int64.logxor
    (Int64.logxor seed (Int64.mul (Int64.of_int (attempt + 1)) 0x9E3779B97F4A7C15L))
    (Int64.mul (Int64.of_int tc) 6271L)

let run_shard ?monitor_path ?(chaos = false) ~dir ~(spec : Ledger.spec)
    ~shard_id ~seed ~attempt () =
  match config_of_spec spec ~seed with
  | Error _ as e -> e
  | Ok cfg -> (
      let ckpt = Ledger.shard_checkpoint dir shard_id in
      let resume =
        if Sys.file_exists ckpt then
          match Campaign.load ~path:ckpt cfg with
          | Ok s -> Ok (Some s)
          | Error e -> Error e
        else Ok None
      in
      match resume with
      | Error _ as e -> e
      | Ok resume ->
          let monitor = Option.map (fun path -> Monitor.create ~path) monitor_path in
          let on_progress =
            if chaos then (fun (s : Fuzzer.stats) ->
              if Faultpoint.enabled () then begin
                let tc = s.Fuzzer.test_cases in
                (* Fresh context for the chaos draws; the fuzz loop
                   re-opens its own test-case context before the next
                   test case, so nothing else draws under this one. *)
                Faultpoint.set_context ~salt:(chaos_salt ~seed ~attempt ~tc);
                if Faultpoint.should_fire fp_crash then
                  (* As if SIGKILLed: no flush, no cleanup — the last
                     periodic checkpoint is all that survives. *)
                  Unix._exit 70;
                if Faultpoint.should_fire fp_hang then
                  (* Stop polling forever; the orchestrator's heartbeats
                     go unanswered, the lease expires, the worker is
                     killed and the shard re-adopted. *)
                  while true do
                    Unix.sleepf 0.05
                  done
              end)
            else fun _ -> ()
          in
          let ucov = Ucoverage.create () in
          let outcome, stats =
            Fuzzer.fuzz ~on_progress ?resume
              ~checkpoint_every:spec.Ledger.sp_checkpoint_every
              ~on_checkpoint:(fun snap -> Campaign.save ~path:ckpt cfg snap)
              ?monitor ~ucoverage:ucov cfg
              ~budget:(Fuzzer.Test_cases spec.Ledger.sp_budget)
          in
          (match monitor with
          | Some m ->
              Monitor.drain ~timeout:0.05 m;
              Monitor.close m
          | None -> ());
          stats.Fuzzer.elapsed_s <- 0.;
          let r_violation =
            match outcome with
            | Fuzzer.No_violation -> None
            | Fuzzer.Violation v ->
                Some
                  {
                    v_tc = stats.Fuzzer.test_cases;
                    v_label = v.Violation.label;
                    v_summary = Violation.summary v;
                    v_program =
                      Revizor_isa.Program.to_string v.Violation.program;
                    v_inputs = List.map Results.input_to_line v.Violation.inputs;
                  }
          in
          Ok
            {
              r_shard = shard_id;
              r_seed = seed;
              r_attempt = attempt;
              r_violation;
              r_stats = stats;
              r_atlas = ucov;
            })

(* --- result codec ------------------------------------------------------ *)

let violation_to_json v =
  Json.Obj
    [
      ("tc", Json.Int v.v_tc);
      ("label", Json.String v.v_label);
      ("summary", Json.String v.v_summary);
      ("program", Json.String v.v_program);
      ("inputs", Json.List (List.map (fun l -> Json.String l) v.v_inputs));
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("shard", Json.Int r.r_shard);
      ("seed", Json.String (Printf.sprintf "0x%Lx" r.r_seed));
      ("attempt", Json.Int r.r_attempt);
      ( "violation",
        match r.r_violation with
        | None -> Json.Null
        | Some v -> violation_to_json v );
      ("stats", Fuzzer.stats_to_json r.r_stats);
      ("ucoverage", Ucoverage.to_json r.r_atlas);
    ]

let ( let* ) = Result.bind

let violation_of_json j =
  let int k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "shard result: missing violation %s" k)
  in
  let str k =
    match Option.bind (Json.member k j) Json.to_str with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "shard result: missing violation %s" k)
  in
  let* v_tc = int "tc" in
  let* v_label = str "label" in
  let* v_summary = str "summary" in
  let* v_program = str "program" in
  let* v_inputs =
    match Json.member "inputs" j with
    | Some (Json.List ls) ->
        List.fold_left
          (fun acc l ->
            let* acc = acc in
            match Json.to_str l with
            | Some s -> Ok (s :: acc)
            | None -> Error "shard result: non-string input line")
          (Ok []) ls
        |> Result.map List.rev
    | _ -> Error "shard result: missing violation inputs"
  in
  Ok { v_tc; v_label; v_summary; v_program; v_inputs }

let of_json j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_str with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "shard result: unknown schema %S" s)
    | None -> Error "shard result: missing schema"
  in
  let* r_shard =
    match Option.bind (Json.member "shard" j) Json.to_int with
    | Some v -> Ok v
    | None -> Error "shard result: missing shard"
  in
  let* r_seed =
    match Option.bind (Json.member "seed" j) Json.to_str with
    | Some s -> (
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error "shard result: bad seed")
    | None -> Error "shard result: missing seed"
  in
  let* r_attempt =
    match Option.bind (Json.member "attempt" j) Json.to_int with
    | Some v -> Ok v
    | None -> Error "shard result: missing attempt"
  in
  let* r_violation =
    match Json.member "violation" j with
    | None | Some Json.Null -> Ok None
    | Some v -> Result.map Option.some (violation_of_json v)
  in
  let* r_stats =
    match Json.member "stats" j with
    | Some s -> Fuzzer.stats_of_json s
    | None -> Error "shard result: missing stats"
  in
  let* r_atlas =
    match Json.member "ucoverage" j with
    | Some u -> Ucoverage.of_json u
    | None -> Error "shard result: missing ucoverage"
  in
  Ok { r_shard; r_seed; r_attempt; r_violation; r_stats; r_atlas }

let save_result ~dir r =
  Revizor_obs.Atomic_file.write
    (Ledger.shard_result dir r.r_shard)
    (Json.to_string_pretty (to_json r) ^ "\n")

let load_result ~dir shard_id =
  let path = Ledger.shard_result dir shard_id in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error (Printf.sprintf "shard result: %s" e)
  | contents -> (
      match Json.parse contents with
      | Error e -> Error (Printf.sprintf "shard result: parse error: %s" e)
      | Ok j -> of_json j)

let result_exists ~dir shard_id = Sys.file_exists (Ledger.shard_result dir shard_id)

(* --- forked worker entry ----------------------------------------------- *)

(* Runs in the freshly forked child; never returns. [Unix._exit] (not
   [exit]) on every path: the child shares the parent's stdio buffers
   and [at_exit] handlers, and must not flush or run either. Signal
   dispositions are reset so a terminal Ctrl-C aimed at the orchestrator
   does not trip the parent's graceful-shutdown handler inside workers —
   worker lifecycle belongs to the orchestrator (SIGKILL + re-adopt). *)
let child_main ~dir ~(spec : Ledger.spec) ~shard_id ~seed ~attempt =
  (try Sys.set_signal Sys.sigint Sys.Signal_default with _ -> ());
  (try Sys.set_signal Sys.sigterm Sys.Signal_default with _ -> ());
  (try Sys.set_signal Sys.sigchld Sys.Signal_default with _ -> ());
  let code =
    match
      run_shard
        ~monitor_path:(Ledger.shard_sock dir shard_id)
        ~chaos:true ~dir ~spec ~shard_id ~seed ~attempt ()
    with
    | Ok r ->
        save_result ~dir r;
        0
    | Error _ -> 71
    | exception _ -> 71
  in
  Unix._exit code
