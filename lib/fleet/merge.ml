(* The central corpus merge: shard results fold into one
   [revizor.merged.v1] document — violations, summed statistics and the
   union of the per-shard coverage atlases.

   Two properties carry the fleet's losslessness guarantee:

   - {e Idempotence}: the document journals committed shard ids, and
     [commit] is a no-op for a journaled shard. A crash between writing
     [merged.json] and marking the ledger entry [Done] therefore costs
     one redundant shard re-run, never a duplicated violation or
     double-counted statistic.

   - {e Order independence}: everything in the document is keyed and
     sorted by shard id, statistics sum is commutative, and
     [Ucoverage.merge] is a commutative/associative/idempotent union —
     so any completion order over the same shards produces the same
     bytes, which is what lets chaos runs be diffed byte-for-byte
     against a sequential reference. *)

open Revizor
module Json = Revizor_obs.Json
module Faultpoint = Revizor_obs.Faultpoint
module Backoff = Revizor_obs.Backoff

let schema = "revizor.merged.v1"

let fp_merge = Faultpoint.point "fleet.merge"

type violation = {
  mv_shard : int;
  mv_seed : int64;
  mv_entry : Worker.violation_entry;
}

type t = {
  m_fingerprint : string;  (* Ledger.fingerprint of the campaign spec *)
  mutable m_shards : int list;  (* committed shard ids, ascending *)
  mutable m_violations : violation list;  (* ascending by shard id *)
  m_stats : Fuzzer.stats;  (* field-wise sum; elapsed_s stays 0 *)
  mutable m_atlas : Ucoverage.t;
}

let empty_stats () : Fuzzer.stats =
  {
    test_cases = 0;
    inputs_tested = 0;
    effective_inputs = 0;
    ineffective_test_cases = 0;
    faulted_test_cases = 0;
    skipped_pathological = 0;
    candidates = 0;
    dismissed_by_swap = 0;
    dismissed_by_nesting = 0;
    rounds = 0;
    growths = 0;
    elapsed_s = 0.;
  }

let create ~(spec : Ledger.spec) =
  {
    m_fingerprint = Ledger.fingerprint spec;
    m_shards = [];
    m_violations = [];
    m_stats = empty_stats ();
    m_atlas = Ucoverage.create ();
  }

let committed t shard_id = List.mem shard_id t.m_shards

let add_stats (dst : Fuzzer.stats) (src : Fuzzer.stats) =
  dst.test_cases <- dst.test_cases + src.test_cases;
  dst.inputs_tested <- dst.inputs_tested + src.inputs_tested;
  dst.effective_inputs <- dst.effective_inputs + src.effective_inputs;
  dst.ineffective_test_cases <-
    dst.ineffective_test_cases + src.ineffective_test_cases;
  dst.faulted_test_cases <- dst.faulted_test_cases + src.faulted_test_cases;
  dst.skipped_pathological <-
    dst.skipped_pathological + src.skipped_pathological;
  dst.candidates <- dst.candidates + src.candidates;
  dst.dismissed_by_swap <- dst.dismissed_by_swap + src.dismissed_by_swap;
  dst.dismissed_by_nesting <-
    dst.dismissed_by_nesting + src.dismissed_by_nesting;
  dst.rounds <- dst.rounds + src.rounds;
  dst.growths <- dst.growths + src.growths

let commit t (r : Worker.result) =
  if committed t r.Worker.r_shard then false
  else begin
    t.m_shards <- List.sort compare (r.Worker.r_shard :: t.m_shards);
    (match r.Worker.r_violation with
    | None -> ()
    | Some entry ->
        t.m_violations <-
          List.sort
            (fun a b -> compare a.mv_shard b.mv_shard)
            ({ mv_shard = r.Worker.r_shard; mv_seed = r.Worker.r_seed; mv_entry = entry }
            :: t.m_violations));
    add_stats t.m_stats r.Worker.r_stats;
    t.m_atlas <- Ucoverage.merge t.m_atlas r.Worker.r_atlas;
    true
  end

let violations t = t.m_violations
let shards t = t.m_shards
let stats t = t.m_stats
let atlas t = t.m_atlas

(* --- codec ------------------------------------------------------------- *)

let violation_to_json v =
  match Worker.violation_to_json v.mv_entry with
  | Json.Obj fields ->
      Json.Obj
        (("shard", Json.Int v.mv_shard)
        :: ("seed", Json.String (Printf.sprintf "0x%Lx" v.mv_seed))
        :: fields)
  | j -> j

let ( let* ) = Result.bind

let violation_of_json j =
  let* mv_shard =
    match Option.bind (Json.member "shard" j) Json.to_int with
    | Some v -> Ok v
    | None -> Error "merged doc: violation missing shard"
  in
  let* mv_seed =
    match
      Option.bind (Option.bind (Json.member "seed" j) Json.to_str)
        Int64.of_string_opt
    with
    | Some v -> Ok v
    | None -> Error "merged doc: violation missing seed"
  in
  let* mv_entry = Worker.violation_of_json j in
  Ok { mv_shard; mv_seed; mv_entry }

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("fingerprint", Json.String t.m_fingerprint);
      ("shards", Json.List (List.map (fun i -> Json.Int i) t.m_shards));
      ("violations", Json.List (List.map violation_to_json t.m_violations));
      ("stats", Fuzzer.stats_to_json t.m_stats);
      ("ucoverage", Ucoverage.to_json t.m_atlas);
    ]

let of_json j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_str with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "merged doc: unknown schema %S" s)
    | None -> Error "merged doc: missing schema"
  in
  let* m_fingerprint =
    match Option.bind (Json.member "fingerprint" j) Json.to_str with
    | Some f -> Ok f
    | None -> Error "merged doc: missing fingerprint"
  in
  let* m_shards =
    match Json.member "shards" j with
    | Some (Json.List ls) ->
        List.fold_left
          (fun acc l ->
            let* acc = acc in
            match Json.to_int l with
            | Some i -> Ok (i :: acc)
            | None -> Error "merged doc: non-int shard id")
          (Ok []) ls
        |> Result.map List.rev
    | _ -> Error "merged doc: missing shards"
  in
  let* m_violations =
    match Json.member "violations" j with
    | Some (Json.List ls) ->
        List.fold_left
          (fun acc l ->
            let* acc = acc in
            let* v = violation_of_json l in
            Ok (v :: acc))
          (Ok []) ls
        |> Result.map List.rev
    | _ -> Error "merged doc: missing violations"
  in
  let* stats =
    match Json.member "stats" j with
    | Some s -> Fuzzer.stats_of_json s
    | None -> Error "merged doc: missing stats"
  in
  let* m_atlas =
    match Json.member "ucoverage" j with
    | Some u -> Ucoverage.of_json u
    | None -> Error "merged doc: missing ucoverage"
  in
  Ok { m_fingerprint; m_shards; m_violations; m_stats = stats; m_atlas }

let render t = Json.to_string_pretty (to_json t) ^ "\n"

(* Atomic write of the merged document, retried under the fleet backoff
   policy; the [fleet.merge] fault point fires once per attempt. A
   persistent failure raises — the orchestrator requeues the shard, and
   the journal makes its eventual re-commit a no-op, so nothing is
   counted twice. *)
let save ~dir ~(spec : Ledger.spec) t =
  let path = Ledger.merged_path dir in
  let rec go n =
    match
      Faultpoint.fire fp_merge;
      Revizor_obs.Atomic_file.write path (render t)
    with
    | () -> ()
    | exception ((Faultpoint.Injected _ | Sys_error _) as e) ->
        if n >= 5 then raise e
        else begin
          Backoff.sleep_ms
            (Backoff.delay_ms spec.Ledger.sp_backoff
               ~key:(Int64.add spec.Ledger.sp_fleet_seed 0x4d3e9eL)
               ~attempt:n);
          go (n + 1)
        end
  in
  go 0

let load ~dir ~(spec : Ledger.spec) =
  let path = Ledger.merged_path dir in
  if not (Sys.file_exists path) then Ok (create ~spec)
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Error (Printf.sprintf "merged doc: %s" e)
    | contents -> (
        match Json.parse contents with
        | Error e -> Error (Printf.sprintf "merged doc: parse error: %s" e)
        | Ok j -> (
            match of_json j with
            | Error _ as e -> e
            | Ok t ->
                if t.m_fingerprint <> Ledger.fingerprint spec then
                  Error
                    (Printf.sprintf
                       "merged doc: fingerprint mismatch (%s on disk, %s \
                        expected): refusing to merge across campaign specs"
                       t.m_fingerprint (Ledger.fingerprint spec))
                else Ok t))
