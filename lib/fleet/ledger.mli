(** The lease-based shard ledger — the fleet's single durable source of
    truth (DESIGN.md §9).

    A campaign spec is sharded into one descriptor per seed; shards move

    {v Pending -> Leased -> Done
         ^          |
         +- backoff + (crash/hang) ... attempts >= max -> Quarantined v}

    and every transition is persisted as one atomic tmp+rename write of
    the whole [revizor.ledger.v1] document. Ledger + per-shard
    checkpoints alone reconstruct fleet state after orchestrator death;
    shard computation resumes from checkpoints bit-for-bit, so the
    resumed fleet's merged results are identical to an uninterrupted
    run's. *)

type spec = {
  sp_target : string;  (** {!Revizor.Target.find} key, e.g. ["Target 5"] *)
  sp_contract : string;  (** {!Revizor.Contract.of_name} key *)
  sp_seeds : int64 list;  (** one shard per campaign seed *)
  sp_budget : int;  (** test cases per shard *)
  sp_n_inputs : int;
  sp_checkpoint_every : int;
  sp_workers : int;
  sp_lease_s : float;  (** lease length; heartbeats renew it *)
  sp_max_attempts : int;  (** failed adoptions before quarantine *)
  sp_fleet_seed : int64;  (** jitter key for the re-adoption backoff *)
  sp_backoff : Revizor_obs.Backoff.policy;
}

val default_spec :
  target:string -> contract:string -> seeds:int64 list -> spec

val fingerprint : spec -> string
(** Digest of the result-shaping fields only (target, contract, seeds,
    budget, inputs): orchestration knobs may change between a run and
    its resume without affecting any merged byte. *)

type state =
  | Pending
  | Leased of { pid : int; expires : float; attempt : int }
  | Done
  | Quarantined

type shard = {
  sh_id : int;
  sh_seed : int64;
  mutable sh_state : state;
  mutable sh_attempts : int;
  mutable sh_not_before : float;
      (** absolute wall-clock gate for re-adoption (capped backoff) *)
}

type t = { dir : string; spec : spec; shards : shard array }

val create : dir:string -> spec -> t
(** Fresh ledger: every shard [Pending]. Nothing is written until
    {!save}. *)

(** {1 Canonical fleet paths} *)

val ledger_path : string -> string
val merged_path : string -> string
val fleet_sock : string -> string
val shard_checkpoint : string -> int -> string
val shard_result : string -> int -> string
val shard_sock : string -> int -> string

(** {1 Transitions} *)

val lease : shard -> pid:int -> now:float -> lease_s:float -> unit
val renew : shard -> now:float -> lease_s:float -> unit
val mark_done : shard -> unit

val mark_failed : t -> shard -> now:float -> unit
(** One failed adoption: increment the attempt count, gate re-adoption
    behind a deterministic capped-backoff delay, and quarantine once
    [sp_max_attempts] is reached. *)

val mark_revoked : shard -> unit
(** Lease revocation that is not the shard's fault (the orchestrator
    died): back to [Pending] with no attempt escalation. *)

val backoff_delay_s : spec -> shard_id:int -> attempt:int -> float
(** The deterministic jittered re-adoption delay (pure function of
    fleet seed, shard id and attempt). *)

val counts : t -> int * int * int * int
(** [(pending, leased, done, quarantined)]. *)

val finished : t -> bool
(** Every shard [Done] or [Quarantined]. *)

(** {1 Persistence} *)

val save : t -> unit
(** Atomic whole-ledger write, retried under the fleet backoff policy;
    the [fleet.ledger_write] fault point fires per attempt. *)

val load : dir:string -> (t, string) result
val exists : dir:string -> bool
val to_json : t -> Revizor_obs.Json.t
val of_json : dir:string -> Revizor_obs.Json.t -> (t, string) result
