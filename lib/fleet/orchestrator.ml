(* The fleet orchestrator: a single-domain control loop that hands
   shards to forked worker processes under time-bounded leases, watches
   their liveness over the monitor sockets they already serve, and
   folds finished shards into the central merge document.

   One tick = reap exited workers (waitpid WNOHANG) -> heartbeat leased
   workers (any monitor reply renews the lease) -> revoke expired leases
   (SIGKILL + requeue from the shard's checkpoint) -> adopt pending
   shards onto free worker slots. Any state change persists the whole
   ledger atomically before the next tick, and the merged document is
   persisted *before* a shard is marked Done — the crash window between
   the two costs one redundant (checkpoint-cheap) shard re-run that the
   merge journal absorbs as a no-op, never a lost or duplicated result.

   The orchestrator process must stay single-domain: workers are
   [Unix.fork] children (safe because nothing else runs concurrently in
   the parent at fork time), and children [Unix._exit] without touching
   inherited stdio buffers. *)

open Revizor
module Json = Revizor_obs.Json
module Faultpoint = Revizor_obs.Faultpoint
module Monitor = Revizor_obs.Monitor

type outcome = Completed | Interrupted

let fp_spawn = Faultpoint.point "fleet.spawn"
let fp_heartbeat = Faultpoint.point "fleet.heartbeat"

let ( let* ) = Result.bind

(* --- heartbeat client -------------------------------------------------- *)

(* One-shot liveness probe over the worker's monitor socket: connect,
   ask [health], and treat any reply bytes as proof of life. Bounded by
   socket timeouts so a hung worker costs [timeout], not forever; every
   failure mode (no socket yet, refused, timed out) is simply "no
   renewal" — only lease expiry, not a missed heartbeat, revokes. *)
let heartbeat_alive ~sock_path ~timeout =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd ->
      let alive =
        try
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
          Unix.connect fd (Unix.ADDR_UNIX sock_path);
          let req = Bytes.of_string "health\n" in
          ignore (Unix.write fd req 0 (Bytes.length req));
          Unix.read fd (Bytes.create 256) 0 256 > 0
        with _ -> false
      in
      (try Unix.close fd with _ -> ());
      alive

(* --- status socket provider ------------------------------------------- *)

let state_name = function
  | Ledger.Pending -> "pending"
  | Ledger.Leased _ -> "leased"
  | Ledger.Done -> "done"
  | Ledger.Quarantined -> "quarantined"

let provider (ledger : Ledger.t) merged cmd =
  let counts_json () =
    let p, l, d, q = Ledger.counts ledger in
    Json.Obj
      [
        ("pending", Json.Int p);
        ("leased", Json.Int l);
        ("done", Json.Int d);
        ("quarantined", Json.Int q);
      ]
  in
  match cmd with
  | "health" ->
      Some
        (Json.Obj
           [ ("schema", Json.String "revizor.monitor.v1"); ("status", Json.String "ok") ])
  | "status" ->
      Some
        (Json.Obj
           [
             ("schema", Json.String "revizor.monitor.v1");
             ("role", Json.String "fleet");
             ( "state",
               Json.String (if Ledger.finished ledger then "finished" else "running")
             );
             ("fingerprint", Json.String (Ledger.fingerprint ledger.Ledger.spec));
             ("total_shards", Json.Int (Array.length ledger.Ledger.shards));
             ("shards", counts_json ());
             ("violations", Json.Int (List.length (Merge.violations merged)));
             ("merged_features", Json.Int (Ucoverage.distinct (Merge.atlas merged)));
           ])
  | "shards" ->
      Some
        (Json.Obj
           [
             ("schema", Json.String "revizor.monitor.v1");
             ("counts", counts_json ());
             ( "shards",
               Json.List
                 (Array.to_list
                    (Array.map
                       (fun sh ->
                         Json.Obj
                           ([
                              ("id", Json.Int sh.Ledger.sh_id);
                              ( "seed",
                                Json.String
                                  (Printf.sprintf "0x%Lx" sh.Ledger.sh_seed) );
                              ("state", Json.String (state_name sh.Ledger.sh_state));
                              ("attempts", Json.Int sh.Ledger.sh_attempts);
                            ]
                           @
                           match sh.Ledger.sh_state with
                           | Ledger.Leased { pid; expires; _ } ->
                               [
                                 ("pid", Json.Int pid);
                                 ("expires", Json.Float expires);
                               ]
                           | _ -> []))
                       ledger.Ledger.shards)) );
           ])
  | _ -> None

(* --- the control loop -------------------------------------------------- *)

(* Persist a finished shard: merged.json first, ledger Done second (see
   the module comment for why this order is the safe one). Any failure
   — unreadable result, injected merge fault past its retries — demotes
   to a normal shard failure: backoff, requeue, eventually quarantine. *)
let complete_or_fail ~log ledger merged sh ~now =
  let dir = ledger.Ledger.dir in
  match Worker.load_result ~dir sh.Ledger.sh_id with
  | Ok r -> (
      match
        (* Unconditional save: an earlier save may have failed after the
           in-memory commit, so "already journaled" does not imply
           "already on disk". Idempotent either way. *)
        ignore (Merge.commit merged r);
        Merge.save ~dir ~spec:ledger.Ledger.spec merged
      with
      | () ->
          Ledger.mark_done sh;
          log
            (Printf.sprintf "shard %d done (attempt %d)%s" sh.Ledger.sh_id
               sh.Ledger.sh_attempts
               (match r.Worker.r_violation with
               | Some v -> ": violation " ^ v.Worker.v_label
               | None -> ""))
      | exception e ->
          log
            (Printf.sprintf "shard %d: merge failed (%s); requeueing"
               sh.Ledger.sh_id (Printexc.to_string e));
          Ledger.mark_failed ledger sh ~now)
  | Error e ->
      log (Printf.sprintf "shard %d: %s; requeueing" sh.Ledger.sh_id e);
      Ledger.mark_failed ledger sh ~now

let kill_and_reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let drive ~log (ledger : Ledger.t) merged ~should_stop =
  let dir = ledger.Ledger.dir in
  let spec = ledger.Ledger.spec in
  let mon =
    match Monitor.create ~path:(Ledger.fleet_sock dir) with
    | m ->
        Monitor.set_provider m (provider ledger merged);
        Some m
    | exception Unix.Unix_error _ -> None
  in
  let hb_interval = Float.max 0.05 (spec.Ledger.sp_lease_s /. 4.) in
  let hb_timeout = Float.min 0.25 hb_interval in
  let last_hb : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let hb_seq : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* A no-op SIGCHLD handler makes a worker's exit interrupt the tick
     select with EINTR, so exits are noticed immediately while the idle
     tick stays long — frequent polling would evict the worker's cache
     working set on small machines and tax every shard a few percent. *)
  let old_sigchld =
    try Some (Sys.signal Sys.sigchld (Sys.Signal_handle (fun _ -> ())))
    with Sys_error _ | Invalid_argument _ -> None
  in
  Ledger.save ledger;
  let finish outcome =
    Option.iter (fun b -> Sys.set_signal Sys.sigchld b) old_sigchld;
    Option.iter
      (fun m ->
        Monitor.drain ~timeout:0.1 m;
        Monitor.close m)
      mon;
    outcome
  in
  let rec loop () =
    if should_stop () then begin
      Array.iter
        (fun sh ->
          match sh.Ledger.sh_state with
          | Ledger.Leased { pid; _ } ->
              kill_and_reap pid;
              Ledger.mark_revoked sh
          | _ -> ())
        ledger.Ledger.shards;
      Ledger.save ledger;
      finish Interrupted
    end
    else if Ledger.finished ledger then finish Completed
    else begin
      let now = Unix.gettimeofday () in
      let changed = ref false in
      (* 1. Reap exited workers; the result file, not the exit status,
         decides success — a worker may die after writing it. *)
      Array.iter
        (fun sh ->
          match sh.Ledger.sh_state with
          | Ledger.Leased { pid; _ } -> (
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> ()
              | _ ->
                  changed := true;
                  complete_or_fail ~log ledger merged sh ~now
              | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                  changed := true;
                  complete_or_fail ~log ledger merged sh ~now)
          | _ -> ())
        ledger.Ledger.shards;
      (* 2. Heartbeats: any reply over the worker's monitor socket
         renews its lease. [fleet.heartbeat] simulates a lost probe. *)
      Array.iter
        (fun sh ->
          match sh.Ledger.sh_state with
          | Ledger.Leased _ ->
              let id = sh.Ledger.sh_id in
              let last = Option.value ~default:0. (Hashtbl.find_opt last_hb id) in
              if now -. last >= hb_interval then begin
                Hashtbl.replace last_hb id now;
                let seq = Option.value ~default:0 (Hashtbl.find_opt hb_seq id) in
                Hashtbl.replace hb_seq id (seq + 1);
                let lost =
                  Faultpoint.enabled ()
                  && begin
                       Faultpoint.set_context
                         ~salt:
                           (Int64.logxor
                              (Int64.add spec.Ledger.sp_fleet_seed
                                 (Int64.of_int (id * 8191)))
                              (Int64.of_int (seq * 131)));
                       Faultpoint.should_fire fp_heartbeat
                     end
                in
                if
                  (not lost)
                  && heartbeat_alive
                       ~sock_path:(Ledger.shard_sock dir id)
                       ~timeout:hb_timeout
                then begin
                  Ledger.renew sh ~now ~lease_s:spec.Ledger.sp_lease_s;
                  changed := true
                end
              end
          | _ -> ())
        ledger.Ledger.shards;
      (* 3. Expired leases: SIGKILL the worker and requeue the shard
         from its checkpoint (unless it finished right at the wire). *)
      Array.iter
        (fun sh ->
          match sh.Ledger.sh_state with
          | Ledger.Leased { pid; expires; _ } when now > expires ->
              log
                (Printf.sprintf "shard %d: lease expired; killing pid %d"
                   sh.Ledger.sh_id pid);
              kill_and_reap pid;
              changed := true;
              if Worker.result_exists ~dir sh.Ledger.sh_id then
                complete_or_fail ~log ledger merged sh ~now
              else Ledger.mark_failed ledger sh ~now
          | _ -> ())
        ledger.Ledger.shards;
      (* 4. Adopt pending shards onto free slots. *)
      let _, leased, _, _ = Ledger.counts ledger in
      let free = ref (spec.Ledger.sp_workers - leased) in
      Array.iter
        (fun sh ->
          if !free > 0 then
            match sh.Ledger.sh_state with
            | Ledger.Pending when sh.Ledger.sh_not_before <= now -> (
                changed := true;
                match
                  if Faultpoint.enabled () then begin
                    Faultpoint.set_context
                      ~salt:
                        (Int64.logxor
                           (Int64.add spec.Ledger.sp_fleet_seed
                              (Int64.of_int (sh.Ledger.sh_id * 127)))
                           (Int64.of_int (sh.Ledger.sh_attempts * 7919)));
                    Faultpoint.fire fp_spawn
                  end
                with
                | exception Faultpoint.Injected _ ->
                    log
                      (Printf.sprintf "shard %d: spawn fault injected"
                         sh.Ledger.sh_id);
                    Ledger.mark_failed ledger sh ~now
                | () -> (
                    flush stdout;
                    flush stderr;
                    match Unix.fork () with
                    | 0 ->
                        Worker.child_main ~dir ~spec ~shard_id:sh.Ledger.sh_id
                          ~seed:sh.Ledger.sh_seed ~attempt:sh.Ledger.sh_attempts
                    | pid ->
                        Ledger.lease sh ~pid ~now
                          ~lease_s:spec.Ledger.sp_lease_s;
                        Hashtbl.replace last_hb sh.Ledger.sh_id now;
                        decr free
                    | exception Unix.Unix_error _ ->
                        Ledger.mark_failed ledger sh ~now))
            | _ -> ())
        ledger.Ledger.shards;
      if !changed then Ledger.save ledger;
      Option.iter Monitor.poll mon;
      (* Long tick: SIGCHLD breaks the select out early (EINTR) when a
         worker exits, so this only bounds heartbeat/expiry latency. *)
      if not (Ledger.finished ledger) then (
        try ignore (Unix.select [] [] [] 0.05)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --- entry points ------------------------------------------------------ *)

let null_log _ = ()

let resume_ledger ~log (ledger : Ledger.t) merged =
  (* Revoke stale leases from a dead orchestrator. Kill first: an
     orphan worker still running would race the re-adopted one on the
     same checkpoint/result files. The kill is best-effort (the pid is
     usually long gone, possibly recycled); a finished worker's result
     survives and commits here. *)
  let dir = ledger.Ledger.dir in
  Array.iter
    (fun sh ->
      match sh.Ledger.sh_state with
      | Ledger.Leased { pid; _ } ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
           with Unix.Unix_error _ -> ());
          if Worker.result_exists ~dir sh.Ledger.sh_id then
            complete_or_fail ~log ledger merged sh ~now:(Unix.gettimeofday ())
          else begin
            log
              (Printf.sprintf "shard %d: revoking stale lease (pid %d)"
                 sh.Ledger.sh_id pid);
            Ledger.mark_revoked sh
          end
      | _ -> ())
    ledger.Ledger.shards;
  Ledger.save ledger

let resume ~dir ?(log = null_log) ?(should_stop = fun () -> false) () =
  let* ledger = Ledger.load ~dir in
  let* merged = Merge.load ~dir ~spec:ledger.Ledger.spec in
  resume_ledger ~log ledger merged;
  Ok (drive ~log ledger merged ~should_stop)

let run ~dir ?(log = null_log) ?(should_stop = fun () -> false) spec =
  Results.mkdir_p dir;
  if Ledger.exists ~dir then
    let* existing = Ledger.load ~dir in
    if Ledger.fingerprint existing.Ledger.spec <> Ledger.fingerprint spec then
      Error
        (Printf.sprintf
           "fleet: %s already holds a different campaign (fingerprint %s, \
            this spec is %s) — use a fresh directory or `fleet resume`"
           dir
           (Ledger.fingerprint existing.Ledger.spec)
           (Ledger.fingerprint spec))
    else begin
      log "existing ledger matches this spec; resuming";
      resume ~dir ~log ~should_stop ()
    end
  else begin
    let ledger = Ledger.create ~dir spec in
    let merged = Merge.create ~spec in
    Ok (drive ~log ledger merged ~should_stop)
  end

(* In-process sequential reference: same shards, same merge code, no
   forking, no faults — the byte-identity baseline for fleet runs. *)
let reference ~dir ?(log = null_log) spec =
  Results.mkdir_p dir;
  let ledger = Ledger.create ~dir spec in
  let merged = Merge.create ~spec in
  let rec go i =
    if i >= Array.length ledger.Ledger.shards then Ok ()
    else
      let sh = ledger.Ledger.shards.(i) in
      match
        Worker.run_shard ~dir ~spec ~shard_id:sh.Ledger.sh_id
          ~seed:sh.Ledger.sh_seed ~attempt:0 ()
      with
      | Error _ as e -> e
      | Ok r ->
          Worker.save_result ~dir r;
          ignore (Merge.commit merged r);
          Ledger.mark_done sh;
          log (Printf.sprintf "shard %d done (reference)" sh.Ledger.sh_id);
          go (i + 1)
  in
  let* () = go 0 in
  Merge.save ~dir ~spec merged;
  Ledger.save ledger;
  Ok ()
