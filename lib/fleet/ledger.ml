(* The lease-based shard ledger: the fleet's single source of truth.

   A campaign spec is sharded into one descriptor per seed; every shard
   moves through the state machine

     Pending -> Leased {pid; expires; attempt} -> Done
        ^            |                             (terminal)
        |            v (crash / hang / lost spawn)
        +--- backoff gate (not_before) --- attempts >= max --> Quarantined

   and every transition is persisted by an atomic tmp+rename write of
   the whole ledger ([revizor.ledger.v1]). The ledger plus the per-shard
   checkpoint files are the orchestrator's complete durable state: a
   SIGKILLed orchestrator resumes from them alone, and because shard
   computation is checkpoint-resumable bit-for-bit, the resumed fleet's
   merged results are identical to an uninterrupted run's.

   Wall-clock fields (lease expiry, backoff gates) are absolute times:
   after a resume they are either honored (future) or trivially
   satisfied (past), never re-derived from a lost process clock. *)

module Json = Revizor_obs.Json
module Backoff = Revizor_obs.Backoff
module Faultpoint = Revizor_obs.Faultpoint

let schema = "revizor.ledger.v1"
let version = 1

type spec = {
  sp_target : string;  (* Target.find key, e.g. "Target 5" *)
  sp_contract : string;  (* Contract.of_name key, e.g. "CT-SEQ" *)
  sp_seeds : int64 list;  (* one shard per campaign seed *)
  sp_budget : int;  (* test cases per shard *)
  sp_n_inputs : int;
  sp_checkpoint_every : int;
  sp_workers : int;
  sp_lease_s : float;
  sp_max_attempts : int;
  sp_fleet_seed : int64;  (* jitter key for the re-adoption backoff *)
  sp_backoff : Backoff.policy;
}

let default_spec ~target ~contract ~seeds =
  {
    sp_target = target;
    sp_contract = contract;
    sp_seeds = seeds;
    sp_budget = 500;
    sp_n_inputs = 50;
    sp_checkpoint_every = 10;
    sp_workers = 2;
    sp_lease_s = 5.;
    sp_max_attempts = 5;
    sp_fleet_seed = 42L;
    sp_backoff = { Backoff.base_ms = 50.; cap_ms = 2000. };
  }

(* Only the result-shaping fields fingerprint: orchestration knobs
   (worker count, lease length, backoff, checkpoint cadence) may differ
   between a run and its resume without changing any merged byte, the
   same contract [Campaign]'s fingerprint gives checkpoints. *)
let canonical spec =
  Printf.sprintf "target=%s;contract=%s;seeds=%s;budget=%d;n_inputs=%d"
    (String.lowercase_ascii spec.sp_target)
    spec.sp_contract
    (String.concat "," (List.map (Printf.sprintf "0x%Lx") spec.sp_seeds))
    spec.sp_budget spec.sp_n_inputs

let fnv1a64 (s : string) =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let fingerprint spec = Printf.sprintf "%016Lx" (fnv1a64 (canonical spec))

type state =
  | Pending
  | Leased of { pid : int; expires : float; attempt : int }
  | Done
  | Quarantined

type shard = {
  sh_id : int;
  sh_seed : int64;
  mutable sh_state : state;
  mutable sh_attempts : int;  (* failed adoption attempts so far *)
  mutable sh_not_before : float;  (* absolute backoff gate for re-adoption *)
}

type t = { dir : string; spec : spec; shards : shard array }

(* --- canonical fleet paths ------------------------------------------- *)

let ledger_path dir = Filename.concat dir "ledger.json"
let merged_path dir = Filename.concat dir "merged.json"
let fleet_sock dir = Filename.concat dir "fleet.sock"

let shard_checkpoint dir id =
  Filename.concat dir (Printf.sprintf "shard-%03d.ckpt.json" id)

let shard_result dir id =
  Filename.concat dir (Printf.sprintf "shard-%03d.result.json" id)

let shard_sock dir id = Filename.concat dir (Printf.sprintf "shard-%03d.sock" id)

(* --- construction ----------------------------------------------------- *)

let create ~dir spec =
  {
    dir;
    spec;
    shards =
      Array.of_list
        (List.mapi
           (fun i seed ->
             {
               sh_id = i;
               sh_seed = seed;
               sh_state = Pending;
               sh_attempts = 0;
               sh_not_before = 0.;
             })
           spec.sp_seeds);
  }

(* --- state machine ---------------------------------------------------- *)

(* Deterministic re-adoption gate: capped exponential backoff whose
   jitter is a pure function of (fleet seed, shard id, attempt). *)
let backoff_delay_s spec ~shard_id ~attempt =
  Backoff.delay_ms spec.sp_backoff
    ~key:(Int64.add spec.sp_fleet_seed (Int64.mul (Int64.of_int (shard_id + 1)) 6271L))
    ~attempt
  /. 1000.

let lease sh ~pid ~now ~lease_s =
  sh.sh_state <- Leased { pid; expires = now +. lease_s; attempt = sh.sh_attempts }

let renew sh ~now ~lease_s =
  match sh.sh_state with
  | Leased l -> sh.sh_state <- Leased { l with expires = now +. lease_s }
  | _ -> ()

let mark_done sh = sh.sh_state <- Done

(* One failed adoption: back off, escalate to quarantine past the cap. *)
let mark_failed t sh ~now =
  sh.sh_attempts <- sh.sh_attempts + 1;
  if sh.sh_attempts >= t.spec.sp_max_attempts then sh.sh_state <- Quarantined
  else begin
    sh.sh_state <- Pending;
    sh.sh_not_before <-
      now +. backoff_delay_s t.spec ~shard_id:sh.sh_id ~attempt:sh.sh_attempts
  end

(* Lease revocation that is *not* the shard's fault (orchestrator died):
   back to Pending with no attempt escalation. *)
let mark_revoked sh = sh.sh_state <- Pending

let counts t =
  Array.fold_left
    (fun (p, l, d, q) sh ->
      match sh.sh_state with
      | Pending -> (p + 1, l, d, q)
      | Leased _ -> (p, l + 1, d, q)
      | Done -> (p, l, d + 1, q)
      | Quarantined -> (p, l, d, q + 1))
    (0, 0, 0, 0) t.shards

let finished t =
  Array.for_all
    (fun sh -> match sh.sh_state with Done | Quarantined -> true | _ -> false)
    t.shards

(* --- JSON codec ------------------------------------------------------- *)

let hex64 v = Json.String (Printf.sprintf "0x%Lx" v)

let spec_to_json s =
  Json.Obj
    [
      ("target", Json.String s.sp_target);
      ("contract", Json.String s.sp_contract);
      ("seeds", Json.List (List.map hex64 s.sp_seeds));
      ("budget", Json.Int s.sp_budget);
      ("n_inputs", Json.Int s.sp_n_inputs);
      ("checkpoint_every", Json.Int s.sp_checkpoint_every);
      ("workers", Json.Int s.sp_workers);
      ("lease_s", Json.Float s.sp_lease_s);
      ("max_attempts", Json.Int s.sp_max_attempts);
      ("fleet_seed", hex64 s.sp_fleet_seed);
      ("backoff_base_ms", Json.Float s.sp_backoff.Backoff.base_ms);
      ("backoff_cap_ms", Json.Float s.sp_backoff.Backoff.cap_ms);
    ]

let state_to_json = function
  | Pending -> Json.Obj [ ("state", Json.String "pending") ]
  | Leased { pid; expires; attempt } ->
      Json.Obj
        [
          ("state", Json.String "leased");
          ("pid", Json.Int pid);
          ("expires", Json.Float expires);
          ("attempt", Json.Int attempt);
        ]
  | Done -> Json.Obj [ ("state", Json.String "done") ]
  | Quarantined -> Json.Obj [ ("state", Json.String "quarantined") ]

let shard_to_json sh =
  let st_fields =
    match state_to_json sh.sh_state with Json.Obj fields -> fields | _ -> []
  in
  Json.Obj
    ([
       ("id", Json.Int sh.sh_id);
       ("seed", hex64 sh.sh_seed);
       ("attempts", Json.Int sh.sh_attempts);
       ("not_before", Json.Float sh.sh_not_before);
     ]
    @ st_fields)

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("version", Json.Int version);
      ("fingerprint", Json.String (fingerprint t.spec));
      ("spec", spec_to_json t.spec);
      ("shards", Json.List (Array.to_list (Array.map shard_to_json t.shards)));
    ]

let ( let* ) = Result.bind

let req_int j k =
  match Option.bind (Json.member k j) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "ledger: missing %s" k)

let req_float j k =
  match Option.bind (Json.member k j) Json.to_float with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "ledger: missing %s" k)

let req_str j k =
  match Option.bind (Json.member k j) Json.to_str with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "ledger: missing %s" k)

let req_hex64 j k =
  let* s = req_str j k in
  match Int64.of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "ledger: bad int64 %s" k)

let spec_of_json j =
  let* sp_target = req_str j "target" in
  let* sp_contract = req_str j "contract" in
  let* sp_seeds =
    match Json.member "seeds" j with
    | Some (Json.List ss) ->
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            match Option.bind (Json.to_str s) Int64.of_string_opt with
            | Some v -> Ok (v :: acc)
            | None -> Error "ledger: bad seed")
          (Ok []) ss
        |> Result.map List.rev
    | _ -> Error "ledger: missing seeds"
  in
  let* sp_budget = req_int j "budget" in
  let* sp_n_inputs = req_int j "n_inputs" in
  let* sp_checkpoint_every = req_int j "checkpoint_every" in
  let* sp_workers = req_int j "workers" in
  let* sp_lease_s = req_float j "lease_s" in
  let* sp_max_attempts = req_int j "max_attempts" in
  let* sp_fleet_seed = req_hex64 j "fleet_seed" in
  let* base_ms = req_float j "backoff_base_ms" in
  let* cap_ms = req_float j "backoff_cap_ms" in
  Ok
    {
      sp_target;
      sp_contract;
      sp_seeds;
      sp_budget;
      sp_n_inputs;
      sp_checkpoint_every;
      sp_workers;
      sp_lease_s;
      sp_max_attempts;
      sp_fleet_seed;
      sp_backoff = { Backoff.base_ms; cap_ms };
    }

let shard_of_json j =
  let* sh_id = req_int j "id" in
  let* sh_seed = req_hex64 j "seed" in
  let* sh_attempts = req_int j "attempts" in
  let* sh_not_before = req_float j "not_before" in
  let* sh_state =
    let* st = req_str j "state" in
    match st with
    | "pending" -> Ok Pending
    | "done" -> Ok Done
    | "quarantined" -> Ok Quarantined
    | "leased" ->
        let* pid = req_int j "pid" in
        let* expires = req_float j "expires" in
        let* attempt = req_int j "attempt" in
        Ok (Leased { pid; expires; attempt })
    | s -> Error (Printf.sprintf "ledger: unknown shard state %S" s)
  in
  Ok { sh_id; sh_seed; sh_state; sh_attempts; sh_not_before }

let of_json ~dir j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_str with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "ledger: unknown schema %S" s)
    | None -> Error "ledger: missing schema"
  in
  let* spec =
    match Json.member "spec" j with
    | Some s -> spec_of_json s
    | None -> Error "ledger: missing spec"
  in
  let* () =
    match Option.bind (Json.member "fingerprint" j) Json.to_str with
    | Some fp when fp = fingerprint spec -> Ok ()
    | Some _ -> Error "ledger: fingerprint does not match its own spec"
    | None -> Error "ledger: missing fingerprint"
  in
  let* shards =
    match Json.member "shards" j with
    | Some (Json.List ss) ->
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* sh = shard_of_json s in
            Ok (sh :: acc))
          (Ok []) ss
        |> Result.map (fun l -> Array.of_list (List.rev l))
    | _ -> Error "ledger: missing shards"
  in
  Ok { dir; spec; shards }

(* --- persistence ------------------------------------------------------ *)

let fp_ledger_write = Faultpoint.point "fleet.ledger_write"

(* Ledger writes retry under the fleet's own (coarse) backoff: the
   [fleet.ledger_write] fault point models a transiently failing write
   of the control-plane file. The write itself is atomic (tmp+rename),
   so a crash at any instant leaves the previous consistent ledger. *)
let save t =
  let contents = Json.to_string_pretty (to_json t) ^ "\n" in
  let key = Int64.add t.spec.sp_fleet_seed 0x1ed5e4L in
  let rec go attempt =
    match
      Faultpoint.fire fp_ledger_write;
      Revizor_obs.Atomic_file.write (ledger_path t.dir) contents
    with
    | () -> ()
    | exception ((Faultpoint.Injected _ | Sys_error _) as e) ->
        if attempt >= 5 then raise e
        else begin
          Backoff.sleep_ms (Backoff.delay_ms t.spec.sp_backoff ~key ~attempt);
          go (attempt + 1)
        end
  in
  go 0

let load ~dir =
  let path = ledger_path dir in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error (Printf.sprintf "ledger: %s" e)
  | contents -> (
      match Json.parse contents with
      | Error e -> Error (Printf.sprintf "ledger: parse error: %s" e)
      | Ok j -> of_json ~dir j)

let exists ~dir = Sys.file_exists (ledger_path dir)
