(* Command-line interface to the Revizor reproduction: fuzz targets
   against contracts, reproduce the paper's experiments, inspect gadgets
   and the instruction catalog, and minimize counterexamples. *)

open Revizor
open Cmdliner
module Metrics = Revizor_obs.Metrics
module Telemetry = Revizor_obs.Telemetry
module Json = Revizor_obs.Json

(* --- shared argument parsers --------------------------------------- *)

let contract_conv =
  let parse s =
    match Contract.of_name s with Ok c -> Ok c | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Contract.pp)

let target_conv =
  let parse s =
    let s' = if String.length s <= 2 then "target " ^ s else s in
    match Target.find s' with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown target %S (use 1..8)" s))
  in
  Arg.conv (parse, Target.pp)

let contract_arg =
  Arg.(
    value
    & opt contract_conv Contract.ct_seq
    & info [ "c"; "contract" ] ~docv:"CONTRACT"
        ~doc:"Contract to test against (e.g. CT-SEQ, MEM-COND, ARCH-SEQ).")

let target_arg =
  Arg.(
    value
    & opt target_conv Target.target5
    & info [ "t"; "target" ] ~docv:"TARGET" ~doc:"Table 2 target (1..8).")

let seed_arg =
  Arg.(value & opt int64 1L & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let budget_arg =
  Arg.(
    value & opt int 1000
    & info [ "n"; "test-cases" ] ~docv:"N" ~doc:"Test-case budget.")

let inputs_arg =
  Arg.(
    value & opt int 50
    & info [ "i"; "inputs" ] ~docv:"N" ~doc:"Inputs per test case.")

(* --- fuzz ----------------------------------------------------------- *)

(* The live dashboard and the closing stats line read the process-wide
   metrics registry rather than the per-campaign [Fuzzer.stats]: with
   [-j N] the registry carries the totals across every domain. *)

let counter_of snap name =
  Option.value (List.assoc_opt name snap.Metrics.counters) ~default:0

let gauge_of snap name =
  Option.value (List.assoc_opt name snap.Metrics.gauges) ~default:0.

let stage_share_line snap ~elapsed =
  let wall_ns = elapsed *. 1e9 in
  let stages = Metrics.stage_breakdown snap in
  String.concat "  "
    (List.filter_map
       (fun (st : Metrics.stage) ->
         if st.Metrics.st_total_ns = 0 || wall_ns <= 0. then None
         else
           Some
             (Printf.sprintf "%s %.1f%%" st.Metrics.st_name
                (100. *. float_of_int st.Metrics.st_total_ns /. wall_ns)))
       stages)

let live_lines_printed = ref 0

(* The live dashboard runs on the terminal's alternate screen with the
   cursor hidden. Every exit path — normal finish, SIGINT/SIGTERM
   graceful shutdown, uncaught exception — must restore the main screen
   and the cursor, or the user's shell is left garbled; [exit_live] is
   idempotent and doubles as an [at_exit] guard. *)
let live_active = ref false

let enter_live () =
  live_active := true;
  live_lines_printed := 0;
  print_string "\027[?1049h\027[?25l";
  flush stdout

let exit_live () =
  if !live_active then begin
    live_active := false;
    live_lines_printed := 0;
    print_string "\027[?1049l\027[?25h";
    flush stdout
  end

let () = at_exit exit_live

(* Graceful shutdown: the first SIGINT/SIGTERM requests a cooperative
   stop — the fuzz loop finishes the current test case, writes a final
   checkpoint, flushes telemetry and restores the terminal. A second
   SIGINT force-exits (the [at_exit] guard still fixes the screen). *)
let stop_requested = Atomic.make false

let install_signal_handlers () =
  let handle _ =
    if Atomic.exchange stop_requested true then exit 130
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)

let render_live ~started () =
  let snap = Metrics.snapshot () in
  let c = counter_of snap and g = gauge_of snap in
  let elapsed = Unix.gettimeofday () -. started in
  let tcs = c "fuzzer.test_cases" in
  let rate = if elapsed > 0. then float_of_int tcs /. elapsed else 0. in
  let inputs = c "fuzzer.inputs_tested" in
  let eff_pct =
    if inputs = 0 then 0.
    else 100. *. float_of_int (c "fuzzer.effective_inputs") /. float_of_int inputs
  in
  let lines =
    [
      Printf.sprintf "elapsed %6.1fs   test cases %7d  (%.1f tc/s)   inputs %d"
        elapsed tcs rate inputs;
      Printf.sprintf
        "effective inputs %.1f%%   ineffective tcs %d   faulted %d"
        eff_pct
        (c "fuzzer.ineffective_test_cases")
        (c "fuzzer.faulted_test_cases");
      Printf.sprintf
        "candidates %d   dismissed: swap %d, nesting %d   coverage combos %.0f"
        (c "fuzzer.candidates")
        (c "fuzzer.dismissed_by_swap")
        (c "fuzzer.dismissed_by_nesting")
        (g "coverage.combinations");
      Printf.sprintf
        "generator: insts %.0f  blocks %.0f  mem %.0f  inputs/tc %.0f   rounds %d (growths %d)"
        (g "gen.n_insts") (g "gen.n_blocks") (g "gen.max_mem_accesses")
        (g "gen.n_inputs") (c "fuzzer.rounds") (c "fuzzer.growths");
      "stages: " ^ stage_share_line snap ~elapsed;
    ]
  in
  if !live_lines_printed > 0 then Printf.printf "\027[%dA" !live_lines_printed;
  List.iter (fun l -> Printf.printf "\027[2K%s\n" l) lines;
  live_lines_printed := List.length lines;
  flush stdout

(* Satellite of the telemetry PR: the old [mod 100 = 0] progress line
   skipped the final state entirely; every run now ends with a closing
   stats line computed from the metrics snapshot. *)
let closing_line ~started ~outcome =
  let snap = Metrics.snapshot () in
  let c = counter_of snap in
  let elapsed = Unix.gettimeofday () -. started in
  let tcs = c "fuzzer.test_cases" in
  Printf.printf
    "done: %d test cases in %.1fs (%.1f tc/s) | inputs %d (effective %d) | \
     candidates %d (swap-dismissed %d, nesting-dismissed %d, faulted %d) | %s\n%!"
    tcs elapsed
    (if elapsed > 0. then float_of_int tcs /. elapsed else 0.)
    (c "fuzzer.inputs_tested")
    (c "fuzzer.effective_inputs")
    (c "fuzzer.candidates")
    (c "fuzzer.dismissed_by_swap")
    (c "fuzzer.dismissed_by_nesting")
    (c "fuzzer.faulted_test_cases")
    (match outcome with
    | Fuzzer.Violation _ -> "VIOLATION"
    | Fuzzer.No_violation -> "no violation")

let write_metrics_json path ~elapsed ~(stats : Fuzzer.stats option) =
  let snap = Metrics.snapshot () in
  let stages = Metrics.stage_breakdown snap in
  let wall_ns = elapsed *. 1e9 in
  let accounted =
    List.fold_left (fun acc st -> acc + st.Metrics.st_total_ns) 0 stages
  in
  let stage_json (st : Metrics.stage) =
    ( st.Metrics.st_name,
      Json.Obj
        [
          ("calls", Json.Int st.Metrics.st_calls);
          ("total_ns", Json.Int st.Metrics.st_total_ns);
          ( "share",
            Json.Float
              (if wall_ns > 0. then float_of_int st.Metrics.st_total_ns /. wall_ns
               else 0.) );
        ] )
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "revizor.metrics.v1");
        ("elapsed_s", Json.Float elapsed);
        ( "stats",
          match stats with Some s -> Fuzzer.stats_to_json s | None -> Json.Null
        );
        ("stages", Json.Obj (List.map stage_json stages));
        ( "accounted_share",
          Json.Float (if wall_ns > 0. then float_of_int accounted /. wall_ns else 0.)
        );
        ("metrics", Metrics.to_json snap);
      ]
  in
  Revizor_obs.Atomic_file.write path (Json.to_string_pretty doc ^ "\n")

let do_fuzz contract target seed budget inputs minimize save_dir jobs
    executor_domains pipeline_depth metrics_out trace_out progress checkpoint
    checkpoint_every resume watchdog_steps watchdog_ms fault_inject fault_seed
    monitor_sock heartbeat_every no_ucoverage stats_out =
  (* Flag validation up front, before anything touches the terminal or
     the filesystem. *)
  let usage_error msg =
    Printf.eprintf "revizor: %s\n" msg;
    Some 2
  in
  let validation =
    if checkpoint <> None && jobs > 1 then
      usage_error
        "--checkpoint requires -j 1: parallel campaigns run independent \
         seeds and have no single resumable state"
    else if resume && checkpoint = None then
      usage_error "--resume requires --checkpoint FILE"
    else if monitor_sock <> None && jobs > 1 then
      usage_error
        "--monitor requires -j 1: parallel campaigns have no single \
         campaign state to report"
    else
      match fault_inject with
      | None -> None
      | Some spec -> (
          match Revizor_obs.Faultpoint.parse_spec spec with
          | Ok points ->
              Revizor_obs.Faultpoint.enable ~seed:fault_seed points;
              None
          | Error e -> usage_error (Printf.sprintf "--fault-inject: %s" e))
  in
  match validation with
  | Some rc -> rc
  | None ->
  Ucoverage.set_enabled (not no_ucoverage);
  (* Caller-owned atlas so it can be saved after the campaign. Parallel
     campaigns (-j > 1) run independent seeds with no single atlas. *)
  let ucov =
    if jobs = 1 && not no_ucoverage then Some (Ucoverage.create ()) else None
  in
  (match trace_out with Some path -> Telemetry.enable_file path | None -> ());
  let monitor =
    Option.map
      (fun path ->
        let m = Revizor_obs.Monitor.create ~path in
        if progress <> `Quiet then
          Printf.printf "[monitor endpoint on %s]\n%!" path;
        m)
      monitor_sock
  in
  install_signal_handlers ();
  if progress <> `Quiet then
    Printf.printf "Testing %s against %s (seed %Ld, budget %d test cases)\n%!"
      (Format.asprintf "%a" Target.pp target)
      (Contract.name contract) seed budget;
  let cfg = Target.fuzzer_config ~seed ~n_inputs:inputs contract target in
  let cfg =
    {
      cfg with
      Fuzzer.executor_domains = max 1 executor_domains;
      pipeline_depth = max 0 pipeline_depth;
      Fuzzer.watchdog =
        {
          Watchdog.max_model_steps =
            Option.value watchdog_steps
              ~default:Watchdog.default.Watchdog.max_model_steps;
          max_input_millis = watchdog_ms;
        };
    }
  in
  let started = Unix.gettimeofday () in
  let last_render = ref 0. in
  let on_progress =
    match progress with
    | `Quiet -> fun _ -> ()
    | `Line ->
        fun (s : Fuzzer.stats) ->
          if s.Fuzzer.test_cases mod 100 = 0 then
            Printf.printf "  ... %d test cases, %d inputs\n%!" s.Fuzzer.test_cases
              s.Fuzzer.inputs_tested
    | `Live ->
        (* Time-based refresh instead of the mod-100 counter: a slow
           configuration still updates twice a second, a fast one does
           not spam the terminal. *)
        fun (_ : Fuzzer.stats) ->
          let now = Unix.gettimeofday () in
          if now -. !last_render >= 0.5 then begin
            last_render := now;
            render_live ~started ()
          end
  in
  let resume_snapshot =
    match (resume, checkpoint) with
    | true, Some path -> (
        match Campaign.load ~path cfg with
        | Ok s ->
            if progress <> `Quiet then
              Printf.printf "Resuming from %s (%d test cases done)\n%!" path
                s.Fuzzer.sn_stats.Fuzzer.test_cases;
            Some s
        | Error e ->
            Printf.eprintf "revizor: %s\n" e;
            exit 2)
    | _ -> None
  in
  let on_checkpoint =
    Option.map (fun path snap -> Campaign.save ~path cfg snap) checkpoint
  in
  let run () =
    if jobs > 1 then begin
      let outcome, per_domain =
        Fuzzer.fuzz_parallel ~domains:jobs cfg ~budget:(Fuzzer.Test_cases budget)
      in
      let total =
        List.fold_left (fun acc (s : Fuzzer.stats) -> acc + s.Fuzzer.test_cases) 0 per_domain
      in
      if progress <> `Quiet then
        Printf.printf "(%d domains, %d test cases total)\n%!" jobs total;
      (outcome, List.hd per_domain)
    end
    else begin
      if progress = `Live then enter_live ();
      Fuzzer.fuzz ~on_progress
        ~should_stop:(fun () -> Atomic.get stop_requested)
        ?resume:resume_snapshot ~checkpoint_every ?on_checkpoint ?monitor
        ~heartbeat_every ?ucoverage:ucov cfg
        ~budget:(Fuzzer.Test_cases budget)
    end
  in
  let finish outcome (stats : Fuzzer.stats) =
    (* Leave the alternate screen before printing anything meant to
       persist in the user's scrollback. *)
    exit_live ();
    closing_line ~started ~outcome;
    if Atomic.get stop_requested then
      Printf.printf "interrupted after %d test cases%s\n%!"
        stats.Fuzzer.test_cases
        (match checkpoint with
        | Some path -> Printf.sprintf " — checkpoint written to %s" path
        | None -> "");
    (match metrics_out with
    | Some path ->
        write_metrics_json path
          ~elapsed:(Unix.gettimeofday () -. started)
          ~stats:(Some stats);
        if progress <> `Quiet then Printf.printf "[metrics written to %s]\n%!" path
    | None -> ());
    (* The stats/atlas artifact for campaigns that never hit a violation
       (a compliant target leaves no --save directory): same
       revizor.stats.v1 document [revizor coverage] reads. *)
    (match stats_out with
    | Some path ->
        Results.save_stats ~stats ?ucoverage:ucov ~path ();
        if progress <> `Quiet then Printf.printf "[stats written to %s]\n%!" path
    | None -> ());
    (* Flush-then-disable so the JSONL sink ends on a complete line even
       when the shutdown was signal-initiated. *)
    Telemetry.flush ();
    Telemetry.disable ();
    (match monitor with
    | Some m ->
        (* Brief post-campaign drain: a client that connected during the
           final test case still gets its answer before the endpoint is
           torn down, and an idle endpoint costs one poll, not the full
           timeout. *)
        Revizor_obs.Monitor.drain ~timeout:0.2 m;
        Revizor_obs.Monitor.close m
    | None -> ())
  in
  match run () with
  | Fuzzer.No_violation, stats ->
      finish Fuzzer.No_violation stats;
      Format.printf "No violation detected.@.%a@." Fuzzer.pp_stats stats;
      0
  | Fuzzer.Violation v, stats ->
      finish (Fuzzer.Violation v) stats;
      Format.printf "%a@.@.%a@." Violation.pp v Fuzzer.pp_stats stats;
      (match save_dir with
      | Some dir ->
          Results.save_violation ~stats ?ucoverage:ucov ~dir v;
          (* The flight recorder runs after the campaign on a dedicated
             CPU/executor, so enabling it cannot perturb the fuzzing
             outcome above. *)
          Forensics.save ~dir (Forensics.capture ?ucoverage:ucov cfg v);
          Format.printf
            "@.Saved to \
             %s/{violation.asm,inputs.txt,report.txt,stats.json,forensics.json}@."
            dir
      | None -> ());
      if minimize then begin
        let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
        let executor = Executor.create cpu cfg.Fuzzer.executor in
        let m = Postprocessor.minimize cfg executor v in
        Format.printf "@.Minimized test case (%d inputs):@.%a@."
          (List.length m.Postprocessor.inputs)
          Revizor_isa.Program.pp m.Postprocessor.program;
        Format.printf "@.With localizing fences:@.%a@." Revizor_isa.Program.pp
          m.Postprocessor.fenced
      end;
      1

let fuzz_cmd =
  let minimize =
    Arg.(value & flag & info [ "m"; "minimize" ] ~doc:"Minimize the violation.")
  in
  let save_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR"
          ~doc:"Save the counterexample (asm + input seeds + report) to DIR.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Run N parallel fuzzing campaigns on separate domains.")
  in
  let executor_domains =
    Arg.(
      value & opt int 1
      & info [ "executor-domains" ] ~docv:"N"
          ~doc:
            "Size of the whole-pipeline domain pool: generate+compile stay \
             on the main domain while N domains run the \
             materialize/model/execute/analyze stages of different test \
             cases concurrently. Results, statistics and checkpoints are \
             bit-identical for every N (noise and fault-injection draws \
             are keyed per test case), so checkpoints written under any \
             value resume under any other. Unlike $(b,-j), this \
             parallelizes a single campaign.")
  in
  let pipeline_depth =
    Arg.(
      value & opt int 1
      & info [ "pipeline-depth" ] ~docv:"N"
          ~doc:
            "Extra test cases generated ahead of the executor pool (with \
             $(b,--executor-domains) > 1): overlaps test-case N+1's \
             generate+compile with test-case N's execution. 0 disables \
             the overlap. No effect on results.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON metrics summary (per-stage time breakdown, \
             counters, histograms) to FILE on exit.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Stream JSONL telemetry events (per-stage spans, coverage and \
             growth events) to FILE during the run.")
  in
  let progress =
    Arg.(
      value
      & opt (enum [ ("quiet", `Quiet); ("line", `Line); ("live", `Live) ]) `Line
      & info [ "progress" ] ~docv:"MODE"
          ~doc:
            "Progress reporting: $(b,quiet) (closing stats line only), \
             $(b,line) (a line every 100 test cases), or $(b,live) (an \
             in-place dashboard refreshed twice a second).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write campaign checkpoints (PRNG state, coverage, statistics) \
             to FILE, atomically, every $(b,--checkpoint-every) test cases \
             and at shutdown. Requires $(b,-j) 1.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 50
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Test cases between periodic checkpoints (with --checkpoint).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from $(b,--checkpoint) FILE. The resumed campaign is \
             bit-identical to the uninterrupted one; a checkpoint taken \
             under a different configuration is rejected.")
  in
  let watchdog_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "watchdog-steps" ] ~docv:"N"
          ~doc:
            "Model-stage step budget per contract trace (including nested \
             speculative exploration); pathological test cases are skipped \
             and counted. Default 50M.")
  in
  let watchdog_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "watchdog-ms" ] ~docv:"MS"
          ~doc:
            "Opt-in wall-clock budget per contract trace; trades \
             bit-reproducibility for liveness on hostile hosts.")
  in
  let fault_inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-inject" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic fault injection: comma-separated \
             $(i,name:rate) with optional $(i,@after) and $(i,#max), e.g. \
             $(b,pool.worker:0.05,writer.io:1.0@10#2). Off by default.")
  in
  let fault_seed =
    Arg.(
      value & opt int64 42L
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed for the fault-injection schedule (with --fault-inject).")
  in
  let monitor_sock =
    Arg.(
      value
      & opt (some string) None
      & info [ "monitor" ] ~docv:"SOCK"
          ~doc:
            "Serve live campaign state on a Unix-domain socket at SOCK: \
             line-delimited $(b,status)/$(b,metrics)/$(b,health) JSON \
             requests plus a one-shot $(b,prom) Prometheus text \
             exposition (query with $(b,revizor monitor)). Served \
             non-blockingly at test-case boundaries; fuzzing results are \
             bit-identical with or without it. Requires $(b,-j) 1.")
  in
  let heartbeat_every =
    Arg.(
      value & opt int 50
      & info [ "heartbeat-every" ] ~docv:"N"
          ~doc:
            "Emit a fuzz.heartbeat telemetry event (round, test cases, \
             throughput, coverage size) every N test cases (with \
             $(b,--trace-out); 0 disables).")
  in
  let no_ucoverage =
    Arg.(
      value & flag
      & info [ "no-ucoverage" ]
          ~doc:
            "Disable the microarchitectural coverage atlas (event-feature \
             coverage harvested from the executor's measurements). Fuzzing \
             outcomes are bit-identical either way; the switch exists for \
             overhead measurements and differential tests.")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-out" ] ~docv:"FILE"
          ~doc:
            "Write the revizor.stats.v1 document (statistics, metrics and \
             the coverage atlas) to FILE at campaign end — also for \
             compliant campaigns, which never produce a --save directory. \
             Read by $(b,revizor coverage).")
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Fuzz a target against a contract (Fig. 2 pipeline).")
    Term.(
      const do_fuzz $ contract_arg $ target_arg $ seed_arg $ budget_arg
      $ inputs_arg $ minimize $ save_dir $ jobs $ executor_domains
      $ pipeline_depth $ metrics_out $ trace_out $ progress $ checkpoint
      $ checkpoint_every $ resume $ watchdog_steps $ watchdog_ms
      $ fault_inject $ fault_seed $ monitor_sock $ heartbeat_every
      $ no_ucoverage $ stats_out)

(* --- check: re-verify a saved counterexample -------------------------- *)

let do_check dir contract target =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Printf.eprintf "%s\n" e; 2 in
  let* program = Results.load_program (Filename.concat dir "violation.asm") in
  let* inputs = Results.load_inputs (Filename.concat dir "inputs.txt") in
  let cfg = Target.fuzzer_config contract target in
  let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
  let executor = Executor.create cpu cfg.Fuzzer.executor in
  match Fuzzer.check_test_case cfg executor program inputs with
  | Ok (Some v) ->
      Format.printf "still a violation: %s@." (Violation.summary v);
      1
  | Ok None ->
      Format.printf "no violation with this target/contract@.";
      0
  | Error e ->
      Printf.eprintf "test case faulted: %s\n" e;
      2

let check_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Directory produced by fuzz --save.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Re-verify a saved counterexample directory.")
    Term.(const do_check $ dir $ contract_arg $ target_arg)

(* --- gadget ---------------------------------------------------------- *)

let do_gadget name list_them contract target seed =
  if list_them then begin
    List.iter
      (fun (g : Gadgets.t) ->
        Printf.printf "%-22s %-10s %s\n" g.Gadgets.name g.Gadgets.reference
          g.Gadgets.description)
      Gadgets.all;
    0
  end
  else
    match Gadgets.find name with
    | None ->
        Printf.eprintf "unknown gadget %S (try --list)\n" name;
        2
    | Some g -> (
        Format.printf "%s (%s)@.%s@.@.%a@.@." g.Gadgets.name g.Gadgets.reference
          g.Gadgets.description Revizor_isa.Program.pp g.Gadgets.program;
        let cfg = Target.fuzzer_config ~seed contract target in
        let cpu = Revizor_uarch.Cpu.create cfg.Fuzzer.uarch in
        let executor = Executor.create cpu cfg.Fuzzer.executor in
        let prng = Prng.create ~seed in
        let inputs = Input.generate_many prng ~entropy:2 ~n:50 in
        match Fuzzer.check_test_case cfg executor g.Gadgets.program inputs with
        | Ok (Some v) ->
            Format.printf "%s vs %s: VIOLATION %s@."
              (Format.asprintf "%a" Target.pp target)
              (Contract.name contract) (Violation.summary v);
            1
        | Ok None ->
            Format.printf "%s vs %s: no violation@."
              (Format.asprintf "%a" Target.pp target)
              (Contract.name contract);
            0
        | Error e ->
            Printf.eprintf "gadget faulted: %s\n" e;
            2)

let gadget_cmd =
  let gadget_name =
    Arg.(
      value & pos 0 string "spectre-v1"
      & info [] ~docv:"NAME" ~doc:"Gadget name (see --list).")
  in
  let list_them = Arg.(value & flag & info [ "list" ] ~doc:"List gadgets.") in
  Cmd.v
    (Cmd.info "gadget" ~doc:"Check a hand-written gadget against a contract.")
    Term.(
      const do_gadget $ gadget_name $ list_them $ contract_arg $ target_arg
      $ seed_arg)

(* --- reproduce -------------------------------------------------------- *)

let do_reproduce what budget runs seed =
  let section title body =
    Printf.printf "\n=== %s ===\n%s\n%!" title body
  in
  let all = what = "all" in
  if all || what = "table3" then
    section "Table 3: contract violations per target"
      (Report.table3 (Experiments.table3 ~budget ~seed ()));
  if all || what = "table4" then
    section "Table 4: detection time"
      (Report.table4 ~runs (Experiments.table4 ~runs ~seed ()));
  if all || what = "table5" then
    section "Table 5: inputs to violation on hand-written gadgets"
      (Report.table5 (Experiments.table5 ~runs:(max runs 20) ~seed ()));
  if all || what = "store-eviction" then
    section "Section 6.4: speculative store eviction"
      (Report.store_eviction (Experiments.store_eviction_check ~seed ()));
  if all || what = "sensitivity" then
    section "Section 6.6: contract sensitivity (STT)"
      (Report.sensitivity (Experiments.contract_sensitivity ~seed ()));
  if all || what = "throughput" then
    section "Appendix A.5.3: fuzzing throughput"
      (Report.throughput (Experiments.throughput ~seed ()));
  if all || what = "ports" then
    section "Extension: port-contention channel"
      (String.concat "\n"
         (List.map
            (fun (g, channel, violated) ->
              Printf.sprintf "%-18s via %-16s %s" g channel
                (if violated then "VIOLATION" else "compliant"))
            (Experiments.port_channel_demo ~seed ())));
  if all || what = "ablations" then begin
    section "Ablation: priming" (Report.ablation (Experiments.ablation_priming ~seed ()));
    section "Ablation: input entropy"
      (Report.entropy_sweep (Experiments.ablation_entropy ~seed ()));
    section "Ablation: noise filtering"
      (Report.ablation (Experiments.ablation_noise_filtering ~seed ()));
    section "Ablation: trace equivalence"
      (Report.ablation (Experiments.ablation_equivalence ~seed ()));
    section "Ablation: swap check"
      (Report.ablation (Experiments.ablation_swap_check ~seed ()));
    section "Ablation: coverage feedback"
      (Report.ablation (Experiments.ablation_feedback ~seed ()))
  end;
  0

let reproduce_cmd =
  let what =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "One of: table3, table4, table5, store-eviction, sensitivity, \
             throughput, ports, ablations, all.")
  in
  let budget =
    Arg.(
      value & opt int 400
      & info [ "budget" ] ~docv:"N" ~doc:"Test-case budget per Table 3 cell.")
  in
  let runs =
    Arg.(
      value & opt int 10
      & info [ "runs" ] ~docv:"N" ~doc:"Repetitions for Tables 4 and 5.")
  in
  Cmd.v
    (Cmd.info "reproduce" ~doc:"Re-run the paper's experiments and print the tables.")
    Term.(const do_reproduce $ what $ budget $ runs $ seed_arg)

(* --- telemetry-check --------------------------------------------------- *)

(* Validator for the artifacts of [--metrics-out] / [--trace-out]; CI
   runs it after the telemetry smoke fuzz. *)

let read_whole path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_metrics_file path =
  match Json.parse (read_whole path) with
  | Error e -> Error (Printf.sprintf "%s: invalid JSON: %s" path e)
  | Ok doc -> (
      let get k = Json.member k doc in
      match (get "schema", get "metrics", get "stages", get "accounted_share") with
      | Some (Json.String "revizor.metrics.v1"), Some metrics, Some (Json.Obj stages), Some share
        -> (
          let n_counters =
            match Json.member "counters" metrics with
            | Some (Json.Obj kvs) -> List.length kvs
            | _ -> 0
          in
          if n_counters = 0 then
            Error (Printf.sprintf "%s: metrics.counters is empty" path)
          else
            match Json.to_float share with
            | Some s ->
                Ok
                  (Printf.sprintf
                     "%s: OK (%d counters, %d stages, %.1f%% of wall time accounted)"
                     path n_counters (List.length stages) (100. *. s))
            | None -> Error (Printf.sprintf "%s: accounted_share not a number" path))
      | _ ->
          Error
            (Printf.sprintf
               "%s: missing schema/metrics/stages/accounted_share keys" path))

(* A malformed FINAL line is tolerated and reported: a campaign killed
   mid-write (SIGKILL, OOM) leaves exactly one truncated tail line, and
   the artifact up to it is still valid evidence. Malformed lines
   anywhere else still fail the check. *)
let check_trace_file path =
  match Revizor_obs.Trace_analysis.load_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok (lines, sc) ->
      if sc.Telemetry.sc_spans + sc.Telemetry.sc_events = 0 then
        Error (Printf.sprintf "%s: no events" path)
      else
        (* Structural validation on top of the line-level scan: per
           domain, spans must nest or be disjoint (a partial overlap is
           an orphaned span end — a telemetry bug), and the deepest
           uncovered interval is reported so accounting holes are
           visible at a glance. *)
        let module T = Revizor_obs.Trace_analysis in
        let groups = T.by_domain (T.spans_of_lines lines) in
        let orphans =
          List.concat_map
            (fun (dom, spans) ->
              List.map (fun pair -> (dom, pair)) (T.check_nesting spans).T.nst_orphans)
            groups
        in
        if orphans <> [] then
          let dom, (outer, inner) = List.hd orphans in
          Error
            (Printf.sprintf
               "%s: %d orphaned span(s) — e.g. dom %d: %S [%d,+%d] \
                partially overlaps %S [%d,+%d]"
               path (List.length orphans) dom inner.T.sp_name inner.T.sp_start
               inner.T.sp_dur outer.T.sp_name outer.T.sp_start outer.T.sp_dur)
        else
          let gap =
            List.fold_left
              (fun acc (dom, spans) ->
                match T.deepest_gap spans with
                | Some g -> (
                    match acc with
                    | Some (_, best) when best.T.g_dur >= g.T.g_dur -> acc
                    | _ -> Some (dom, g))
                | None -> acc)
              None groups
          in
          Ok
            (Printf.sprintf "%s: OK (%d spans, %d events, nesting valid%s%s)"
               path sc.Telemetry.sc_spans sc.Telemetry.sc_events
               (match gap with
               | Some (dom, g) ->
                   Printf.sprintf
                     "; deepest unaccounted gap %.2f ms on dom %d between \
                      %s and %s"
                     (float_of_int g.T.g_dur /. 1e6)
                     dom g.T.g_after g.T.g_before
               | None -> "")
               (if sc.Telemetry.sc_truncated_tail then
                  "; truncated final line tolerated"
                else ""))

let do_telemetry_check metrics_file trace_file =
  let results =
    (match metrics_file with Some p -> [ check_metrics_file p ] | None -> [])
    @ (match trace_file with Some p -> [ check_trace_file p ] | None -> [])
  in
  if results = [] then begin
    Printf.eprintf "nothing to check: pass --metrics and/or --trace\n";
    2
  end
  else begin
    List.iter
      (function
        | Ok msg -> Printf.printf "%s\n" msg
        | Error msg -> Printf.eprintf "FAIL %s\n" msg)
      results;
    if List.for_all Result.is_ok results then 0 else 1
  end

let telemetry_check_cmd =
  let metrics_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "metrics" ] ~docv:"FILE" ~doc:"Metrics JSON from --metrics-out.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"JSONL trace from --trace-out.")
  in
  Cmd.v
    (Cmd.info "telemetry-check"
       ~doc:"Validate --metrics-out / --trace-out artifacts (used by CI).")
    Term.(const do_telemetry_check $ metrics_file $ trace_file)

(* --- monitor: query a live campaign's endpoint ------------------------- *)

let do_monitor sock cmd =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  match Unix.connect fd (Unix.ADDR_UNIX sock) with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "revizor: cannot connect to %s: %s\n" sock
        (Unix.error_message e);
      2
  | () -> (
      (* The server answers at test-case boundaries, so a response may be
         a few test cases away; bound the wait rather than hanging. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
      let msg = cmd ^ "\n" in
      let rec send off =
        if off < String.length msg then
          send (off + Unix.write_substring fd msg off (String.length msg - off))
      in
      send 0;
      (* [prom] streams until the server closes; line commands stop at
         the first complete line. *)
      let oneshot =
        match cmd with
        | "prom" | "prometheus" | "metrics.prom" -> true
        | _ -> false
      in
      let buf = Buffer.create 1024 in
      let bytes = Bytes.create 4096 in
      let rec recv () =
        match Unix.read fd bytes 0 (Bytes.length bytes) with
        | 0 -> true
        | n ->
            Buffer.add_subbytes buf bytes 0 n;
            if (not oneshot) && Buffer.length buf > 0
               && String.contains (Buffer.contents buf) '\n'
            then true
            else recv ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            false
        | exception Unix.Unix_error _ -> false
      in
      let ok = recv () in
      print_string (Buffer.contents buf);
      if Buffer.length buf > 0 then begin
        if Buffer.nth buf (Buffer.length buf - 1) <> '\n' then print_newline ()
      end;
      flush stdout;
      if not ok then begin
        Printf.eprintf "revizor: no response from %s within 30s\n" sock;
        2
      end
      else 0)

let monitor_cmd =
  let sock =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOCK" ~doc:"Socket path passed to fuzz --monitor.")
  in
  let cmd =
    Arg.(
      value & pos 1 string "status"
      & info [] ~docv:"CMD"
          ~doc:
            "Request: status, metrics, health, coverage, or prom \
             (Prometheus text).")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Query a running campaign's --monitor endpoint.")
    Term.(const do_monitor $ sock $ cmd)

(* --- trace: analytics over --trace-out JSONL --------------------------- *)

module TA = Revizor_obs.Trace_analysis

let load_trace path k =
  match TA.load_file path with
  | Error e ->
      Printf.eprintf "revizor: %s\n" e;
      2
  | Ok (lines, scan) -> k lines scan

let do_trace_report file =
  load_trace file @@ fun lines scan ->
  let spans = TA.spans_of_lines lines in
  Printf.printf "%s: %d spans, %d events%s\n" file scan.Telemetry.sc_spans
    scan.Telemetry.sc_events
    (if scan.Telemetry.sc_truncated_tail then " (truncated tail dropped)"
     else "");
  if spans = [] then begin
    Printf.printf "no spans to analyze\n";
    0
  end
  else begin
    Printf.printf "\nPer-stage totals:\n";
    Printf.printf "  %-22s %9s %12s %12s %12s\n" "stage" "calls" "total ms"
      "mean us" "max us";
    List.iter
      (fun (st : TA.stage_stat) ->
        Printf.printf "  %-22s %9d %12.2f %12.1f %12.1f\n" st.TA.st_stage
          st.TA.st_calls
          (float_of_int st.TA.st_total_ns /. 1e6)
          (float_of_int st.TA.st_total_ns
          /. float_of_int (max 1 st.TA.st_calls)
          /. 1e3)
          (float_of_int st.TA.st_max_ns /. 1e3))
      (TA.stage_stats spans);
    Printf.printf "\nPer-domain utilization:\n";
    Printf.printf "  %-6s %9s %12s %12s %8s  %s\n" "dom" "spans" "busy ms"
      "stall ms" "busy%" "top stage";
    List.iter
      (fun (d : TA.domain_stat) ->
        let wall = d.TA.d_busy_ns + d.TA.d_stall_ns in
        Printf.printf "  %-6d %9d %12.2f %12.2f %7.1f%%  %s\n" d.TA.d_dom
          d.TA.d_spans
          (float_of_int d.TA.d_busy_ns /. 1e6)
          (float_of_int d.TA.d_stall_ns /. 1e6)
          (if wall = 0 then 0.
           else 100. *. float_of_int d.TA.d_busy_ns /. float_of_int wall)
          d.TA.d_top_stage)
      (TA.domain_stats spans);
    let ok = ref true in
    List.iter
      (fun (dom, group) ->
        let n = TA.check_nesting group in
        if n.TA.nst_orphans <> [] then begin
          ok := false;
          Printf.printf "\ndom %d: %d ORPHANED span pair(s)\n" dom
            (List.length n.TA.nst_orphans)
        end;
        match TA.deepest_gap group with
        | Some g when g.TA.g_dur > 0 ->
            Printf.printf
              "dom %d: max depth %d, deepest gap %.2f ms (%s -> %s)\n" dom
              n.TA.nst_max_depth
              (float_of_int g.TA.g_dur /. 1e6)
              g.TA.g_after g.TA.g_before
        | _ -> Printf.printf "dom %d: max depth %d, no gaps\n" dom n.TA.nst_max_depth)
      (TA.by_domain spans);
    if !ok then 0 else 1
  end

let do_trace_export file out =
  load_trace file @@ fun lines _scan ->
  Revizor_obs.Atomic_file.write out (Json.to_string (TA.to_chrome lines) ^ "\n");
  Printf.printf "wrote %s (load in Perfetto / chrome://tracing)\n" out;
  0

let do_trace_diff file_a file_b =
  load_trace file_a @@ fun lines_a _ ->
  load_trace file_b @@ fun lines_b _ ->
  let rows = TA.diff (TA.spans_of_lines lines_a) (TA.spans_of_lines lines_b) in
  Printf.printf "%-22s %18s %18s %10s\n" "stage"
    (Filename.basename file_a ^ " mean us")
    (Filename.basename file_b ^ " mean us")
    "B/A";
  List.iter
    (fun (r : TA.diff_row) ->
      let mean m = if Float.is_nan m then "-" else Printf.sprintf "%.1f" (m /. 1e3) in
      Printf.printf "%-22s %18s %18s %10s\n" r.TA.dr_stage
        (mean r.TA.dr_mean_a_ns) (mean r.TA.dr_mean_b_ns)
        (if Float.is_nan r.TA.dr_mean_ratio then "-"
         else Printf.sprintf "%.2fx" r.TA.dr_mean_ratio))
    rows;
  0

let trace_cmd =
  let file n doc = Arg.(required & pos n (some file) None & info [] ~docv:"FILE" ~doc) in
  let report =
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Per-stage and per-domain summary of a --trace-out JSONL file: \
            stage totals, domain utilization with stall attribution, span \
            nesting and the deepest unaccounted gap.")
      Term.(const do_trace_report $ file 0 "JSONL trace from --trace-out.")
  in
  let export =
    let out =
      Arg.(
        value & opt string "trace.perfetto.json"
        & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output path.")
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Convert a --trace-out JSONL file to Chrome trace-event JSON \
            (loadable in Perfetto / chrome://tracing).")
      Term.(const do_trace_export $ file 0 "JSONL trace from --trace-out." $ out)
  in
  let diff =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Per-stage regression table between two recorded runs: calls, \
            mean time and the B/A mean ratio per stage.")
      Term.(
        const do_trace_diff
        $ file 0 "Baseline JSONL trace."
        $ file 1 "Candidate JSONL trace.")
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Analyze --trace-out telemetry (report/export/diff).")
    [ report; export; diff ]

(* --- forensics --------------------------------------------------------- *)

let do_forensics_show path =
  let path =
    if Sys.file_exists path && Sys.is_directory path then
      Forensics.file ~dir:path
    else path
  in
  match Forensics.load path with
  | Error e ->
      Printf.eprintf "revizor: %s\n" e;
      2
  | Ok f ->
      print_string (Forensics.render f);
      0

let forensics_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH"
          ~doc:"A forensics.json file, or a fuzz --save directory.")
  in
  let show =
    Cmd.v
      (Cmd.info "show"
         ~doc:
           "Render a violation's flight-recorder artifact: program, \
            diverging traces, speculation timeline, fence-localized leak \
            region.")
      Term.(const do_forensics_show $ path)
  in
  Cmd.group
    (Cmd.info "forensics" ~doc:"Inspect violation flight-recorder artifacts.")
    [ show ]

(* --- coverage: the microarchitectural coverage atlas ------------------- *)

(* Accepts a stats.json path or a directory holding one (fuzz --save /
   --stats-out both produce the same revizor.stats.v1 document). *)
let load_atlas path =
  let stats_path =
    if Sys.file_exists path && Sys.is_directory path then
      Filename.concat path "stats.json"
    else path
  in
  match Results.load_stats stats_path with
  | Error e -> Error e
  | Ok { Results.ucoverage = None; _ } ->
      Error
        (Printf.sprintf
           "%s: no coverage atlas (campaign ran with --no-ucoverage, or the \
            file predates atlas collection)"
           stats_path)
  | Ok { Results.ucoverage = Some u; stats; _ } -> Ok (u, stats)

let with_atlas path k =
  match load_atlas path with
  | Error e ->
      Printf.eprintf "revizor: %s\n" e;
      2
  | Ok (u, stats) -> k u stats

(* The curve is monotone by construction (every point adds at least one
   feature at a later test case); verifying it here makes [coverage
   report] a self-check CI can lean on. *)
let frontier_monotone u =
  let rec go = function
    | (t1, n1) :: ((t2, n2) :: _ as rest) ->
        t1 < t2 && n1 < n2 && go rest
    | _ -> true
  in
  go (Ucoverage.frontier u)

let do_coverage_report path =
  with_atlas path @@ fun u stats ->
  let test_cases =
    Option.map (fun (s : Fuzzer.stats) -> s.Fuzzer.test_cases) stats
  in
  print_string (Ucoverage.render_report ?test_cases u);
  if frontier_monotone u then 0
  else begin
    Printf.eprintf "revizor: saturation curve is not monotone (corrupt atlas)\n";
    1
  end

let do_coverage_diff path_a path_b =
  with_atlas path_a @@ fun a _ ->
  with_atlas path_b @@ fun b _ ->
  let only_a, only_b = Ucoverage.diff a b in
  let show title features =
    Printf.printf "%s (%d):\n" title (List.length features);
    List.iter
      (fun f -> Printf.printf "  %s\n" (Ucoverage.feature_to_string f))
      features
  in
  if only_a = [] && only_b = [] then begin
    Printf.printf
      "atlases cover identical feature sets (%d features each)\n"
      (Ucoverage.distinct a);
    0
  end
  else begin
    show (Printf.sprintf "only covered by %s" path_a) only_a;
    show (Printf.sprintf "only covered by %s" path_b) only_b;
    0
  end

let do_coverage_export path out format frontier_only =
  with_atlas path @@ fun u _ ->
  let contents =
    match format with
    | `Json ->
        Json.to_string_pretty
          (if frontier_only then
             Json.List
               (List.map
                  (fun (tc, n) -> Json.List [ Json.Int tc; Json.Int n ])
                  (Ucoverage.frontier u))
           else Ucoverage.to_json u)
        ^ "\n"
    | `Csv ->
        if frontier_only then
          "test_case,cumulative_features\n"
          ^ String.concat ""
              (List.map
                 (fun (tc, n) -> Printf.sprintf "%d,%d\n" tc n)
                 (Ucoverage.frontier u))
        else
          "feature,first_hit_tc\n"
          ^ String.concat ""
              (List.map
                 (fun (f, tc) ->
                   Printf.sprintf "%s,%d\n" (Ucoverage.feature_to_string f) tc)
                 (Ucoverage.first_hits u))
  in
  (match out with
  | Some o ->
      Revizor_obs.Atomic_file.write o contents;
      Printf.printf "wrote %s\n" o
  | None -> print_string contents);
  0

let coverage_cmd =
  let atlas_pos n doc =
    Arg.(required & pos n (some string) None & info [] ~docv:"PATH" ~doc)
  in
  let report =
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Render a campaign's microarchitectural coverage atlas: \
            per-mechanism and per-bucket feature tables with first-hit \
            test cases, and the saturation curve. Exits non-zero if the \
            curve is not monotone.")
      Term.(
        const do_coverage_report
        $ atlas_pos 0 "A stats.json (from fuzz --save or --stats-out), or a \
                       directory holding one.")
  in
  let diff =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Differential coverage between two campaigns: which speculation \
            features each covered that the other did not (e.g. an \
            unpatched target vs its patched variant).")
      Term.(
        const do_coverage_diff
        $ atlas_pos 0 "Baseline stats.json or directory."
        $ atlas_pos 1 "Comparison stats.json or directory.")
  in
  let export =
    let out =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output path (default stdout).")
    in
    let format =
      Arg.(
        value
        & opt (enum [ ("csv", `Csv); ("json", `Json) ]) `Csv
        & info [ "format" ] ~docv:"FMT" ~doc:"Output format: csv or json.")
    in
    let frontier_only =
      Arg.(
        value & flag
        & info [ "frontier" ]
            ~doc:
              "Export the saturation curve (test case, cumulative features) \
               instead of the per-feature first-hit table.")
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Export the atlas as CSV or JSON: per-feature first hits, or \
            the saturation curve with --frontier.")
      Term.(
        const do_coverage_export
        $ atlas_pos 0 "A stats.json or directory holding one."
        $ out $ format $ frontier_only)
  in
  Cmd.group
    (Cmd.info "coverage"
       ~doc:
         "Inspect microarchitectural coverage atlases (report/diff/export).")
    [ report; diff; export ]

(* --- isa --------------------------------------------------------------- *)

let do_isa () =
  let open Revizor_isa in
  let show name subsets =
    Printf.printf "%-18s %4d unique instruction variants\n" name
      (Catalog.count subsets)
  in
  show "AR" [ Catalog.AR ];
  show "AR+MEM" [ Catalog.AR; Catalog.MEM ];
  show "AR+MEM+VAR" [ Catalog.AR; Catalog.MEM; Catalog.VAR ];
  show "AR+CB" [ Catalog.AR; Catalog.CB ];
  show "AR+MEM+CB" [ Catalog.AR; Catalog.MEM; Catalog.CB ];
  show "AR+MEM+CB+VAR" [ Catalog.AR; Catalog.MEM; Catalog.CB; Catalog.VAR ];
  show "+IND (extension)"
    [ Catalog.AR; Catalog.MEM; Catalog.CB; Catalog.VAR; Catalog.IND ];
  0

let isa_cmd =
  Cmd.v
    (Cmd.info "isa" ~doc:"Report the instruction-catalog sizes (cf. §6.1).")
    Term.(const do_isa $ const ())

(* --- fleet: multi-process campaign orchestration ----------------------- *)

module Fleet_ledger = Revizor_fleet.Ledger
module Fleet_merge = Revizor_fleet.Merge
module Fleet_orch = Revizor_fleet.Orchestrator

(* Closing summary for run/resume/status: ledger counts plus the merged
   corpus. Exit codes: 0 compliant, 1 violations found, 3 shards
   quarantined (results incomplete), 2 operational error. *)
let fleet_summary dir =
  match Fleet_ledger.load ~dir with
  | Error e ->
      Printf.eprintf "revizor: %s\n" e;
      2
  | Ok ledger ->
      let p, l, d, q = Fleet_ledger.counts ledger in
      Printf.printf
        "fleet %s: %d shards — %d done, %d pending, %d leased, %d quarantined\n"
        (Fleet_ledger.fingerprint ledger.Fleet_ledger.spec)
        (Array.length ledger.Fleet_ledger.shards)
        d p l q;
      let violations =
        match Fleet_merge.load ~dir ~spec:ledger.Fleet_ledger.spec with
        | Error e ->
            Printf.printf "  (no merged corpus: %s)\n" e;
            0
        | Ok m ->
            let vs = Fleet_merge.violations m in
            Printf.printf "  merged: %d shards, %d violations, %d atlas features\n"
              (List.length (Fleet_merge.shards m))
              (List.length vs)
              (Ucoverage.distinct (Fleet_merge.atlas m));
            List.iter
              (fun (v : Fleet_merge.violation) ->
                Printf.printf "  shard %d (seed 0x%Lx): %s\n" v.Fleet_merge.mv_shard
                  v.Fleet_merge.mv_seed
                  v.Fleet_merge.mv_entry.Revizor_fleet.Worker.v_label)
              vs;
            List.length vs
      in
      flush stdout;
      if q > 0 then 3 else if violations > 0 then 1 else 0

let arm_faults fault_inject fault_seed =
  match fault_inject with
  | None -> Ok ()
  | Some spec -> (
      match Revizor_obs.Faultpoint.parse_spec spec with
      | Ok points ->
          Revizor_obs.Faultpoint.enable ~seed:fault_seed points;
          Ok ()
      | Error e -> Error (Printf.sprintf "--fault-inject: %s" e))

let do_fleet_run dir contract target shards seed budget inputs workers lease
    max_attempts checkpoint_every fleet_seed fault_inject fault_seed
    as_reference quiet =
  match arm_faults fault_inject fault_seed with
  | Error e ->
      Printf.eprintf "revizor: %s\n" e;
      2
  | Ok () -> (
      let seeds = List.init shards (fun i -> Int64.add seed (Int64.of_int i)) in
      let spec =
        {
          (Fleet_ledger.default_spec ~target:target.Target.name
             ~contract:(Contract.name contract) ~seeds)
          with
          Fleet_ledger.sp_budget = budget;
          sp_n_inputs = inputs;
          sp_workers = max 1 workers;
          sp_lease_s = lease;
          sp_max_attempts = max_attempts;
          sp_checkpoint_every = checkpoint_every;
          sp_fleet_seed = fleet_seed;
        }
      in
      let log =
        if quiet then fun _ -> ()
        else fun s -> Printf.printf "[fleet] %s\n%!" s
      in
      if as_reference then begin
        match Fleet_orch.reference ~dir ~log spec with
        | Ok () -> fleet_summary dir
        | Error e ->
            Printf.eprintf "revizor: %s\n" e;
            2
      end
      else begin
        install_signal_handlers ();
        if not quiet then
          Printf.printf
            "Fleet: %s vs %s — %d shards (seeds 0x%Lx..0x%Lx), %d workers, \
             budget %d, lease %.1fs\n%!"
            target.Target.name (Contract.name contract) shards seed
            (Int64.add seed (Int64.of_int (shards - 1)))
            spec.Fleet_ledger.sp_workers budget lease;
        match
          Fleet_orch.run ~dir ~log
            ~should_stop:(fun () -> Atomic.get stop_requested)
            spec
        with
        | Ok Fleet_orch.Completed -> fleet_summary dir
        | Ok Fleet_orch.Interrupted ->
            if not quiet then Printf.printf "[fleet] interrupted; resume with `revizor fleet resume --dir %s`\n%!" dir;
            ignore (fleet_summary dir);
            130
        | Error e ->
            Printf.eprintf "revizor: %s\n" e;
            2
      end)

let do_fleet_resume dir fault_inject fault_seed quiet =
  match arm_faults fault_inject fault_seed with
  | Error e ->
      Printf.eprintf "revizor: %s\n" e;
      2
  | Ok () -> (
      install_signal_handlers ();
      let log =
        if quiet then fun _ -> ()
        else fun s -> Printf.printf "[fleet] %s\n%!" s
      in
      match
        Fleet_orch.resume ~dir ~log
          ~should_stop:(fun () -> Atomic.get stop_requested)
          ()
      with
      | Ok Fleet_orch.Completed -> fleet_summary dir
      | Ok Fleet_orch.Interrupted ->
          ignore (fleet_summary dir);
          130
      | Error e ->
          Printf.eprintf "revizor: %s\n" e;
          2)

let do_fleet_status dir =
  let sock = Fleet_ledger.fleet_sock dir in
  (* Prefer the live orchestrator's status socket; fall back to reading
     the ledger off disk when no orchestrator is running. *)
  if
    Sys.file_exists sock
    && Fleet_orch.heartbeat_alive ~sock_path:sock ~timeout:0.3
  then do_monitor sock "status"
  else fleet_summary dir

let fleet_cmd =
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR"
          ~doc:"Fleet campaign directory (ledger, checkpoints, merged corpus).")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:"Number of shards: campaign seeds SEED..SEED+N-1, one per shard.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "w"; "workers" ] ~docv:"N" ~doc:"Concurrent worker processes.")
  in
  let lease =
    Arg.(
      value & opt float 5.
      & info [ "lease" ] ~docv:"SECONDS"
          ~doc:
            "Shard lease length. Heartbeats over the worker's monitor \
             socket renew it; an expired lease means a crashed or hung \
             worker, which is killed and its shard re-adopted from its \
             last checkpoint.")
  in
  let max_attempts =
    Arg.(
      value & opt int 5
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:
            "Failed adoptions (with capped-backoff re-adoption gates) \
             before a shard is quarantined.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 10
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Test cases between a worker's periodic shard checkpoints.")
  in
  let fleet_seed =
    Arg.(
      value & opt int64 42L
      & info [ "fleet-seed" ] ~docv:"SEED"
          ~doc:"Seed for the deterministic re-adoption backoff jitter.")
  in
  let fault_inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-inject" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic fault injection (fleet points: \
             $(b,fleet.spawn), $(b,fleet.heartbeat), $(b,fleet.merge), \
             $(b,fleet.ledger_write), $(b,fleet.worker_crash), \
             $(b,fleet.worker_hang); plus every in-worker point).")
  in
  let fault_seed =
    Arg.(
      value & opt int64 42L
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed for the fault-injection schedule (with --fault-inject).")
  in
  let as_reference =
    Arg.(
      value & flag
      & info [ "reference" ]
          ~doc:
            "Run the shards sequentially in-process through the same merge \
             code (no forking, no faults): the byte-identity baseline a \
             fleet run over the same spec is diffed against.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress output.")
  in
  let run =
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Run a sharded campaign across worker processes under the \
            lease-based ledger; crash/hang recovery resumes shards from \
            their checkpoints with bit-identical merged results.")
      Term.(
        const do_fleet_run $ dir_arg $ contract_arg $ target_arg $ shards
        $ seed_arg $ budget_arg $ inputs_arg $ workers $ lease $ max_attempts
        $ checkpoint_every $ fleet_seed $ fault_inject $ fault_seed
        $ as_reference $ quiet)
  in
  let resume =
    Cmd.v
      (Cmd.info "resume"
         ~doc:
           "Resume a fleet campaign after orchestrator death: the ledger \
            and shard checkpoints alone reconstruct the state; merged \
            results are byte-identical to an uninterrupted run.")
      Term.(const do_fleet_resume $ dir_arg $ fault_inject $ fault_seed $ quiet)
  in
  let status =
    let dir_pos =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"DIR" ~doc:"Fleet campaign directory.")
    in
    Cmd.v
      (Cmd.info "status"
         ~doc:
           "Query a fleet: the live orchestrator's status socket when one \
            is running, the on-disk ledger and merged corpus otherwise.")
      Term.(const do_fleet_status $ dir_pos)
  in
  Cmd.group
    (Cmd.info "fleet"
       ~doc:
         "Multi-process campaign orchestration: lease-based shard ledger, \
          checkpointed crash recovery, central corpus merge.")
    [ run; resume; status ]

let main =
  Cmd.group
    (Cmd.info "revizor" ~version:"1.0.0"
       ~doc:
         "Model-based Relational Testing of (simulated) black-box CPUs \
          against speculation contracts.")
    [
      fuzz_cmd; check_cmd; gadget_cmd; reproduce_cmd; isa_cmd;
      telemetry_check_cmd; monitor_cmd; trace_cmd; forensics_cmd;
      coverage_cmd; fleet_cmd;
    ]

let () = exit (Cmd.eval' main)
